//! Zero-cost-when-disabled tracing spans and events.
//!
//! Modeled on the `tracing` crate's surface but reduced to what the
//! scheduling pipeline needs: leveled, targeted spans with typed fields,
//! wall-time measurement on span exit, and an `ESCHED_LOG`-style filter.
//!
//! The fast path is a single relaxed atomic load: [`enabled`] compares the
//! requested level against a global ceiling that is 0 (`off`) until a
//! subscriber is installed. The [`crate::span!`]/[`crate::event!`] macros
//! expand to an `if enabled(..)` guard, so field expressions are never
//! evaluated and no allocation happens while tracing is off — verified by
//! the `micro_primitives` bench in `esched-bench`.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Verbosity level, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or surprising failures.
    Error = 1,
    /// Suspicious conditions (e.g. solver hit the iteration cap).
    Warn = 2,
    /// One line per pipeline stage.
    Info = 3,
    /// Per-phase details: allocation rounds, solver stop reasons.
    Debug = 4,
    /// Per-iteration firehose.
    Trace = 5,
}

impl Level {
    fn from_str_opt(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// A typed span/event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned counter.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.6}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v:?}"),
        }
    }
}

macro_rules! impl_from_field {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for FieldValue {
            fn from(v: $t) -> Self { FieldValue::$variant(v as $conv) }
        })*
    };
}
impl_from_field!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
    i64 => I64 as i64, isize => I64 as i64,
    f32 => F64 as f64, f64 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// What a [`Record`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span was entered.
    SpanEnter,
    /// A span was exited; carries the elapsed wall time in nanoseconds.
    SpanExit {
        /// Elapsed wall time inside the span.
        elapsed_ns: u64,
    },
    /// A point-in-time event.
    Event,
}

/// One emitted trace record, as handed to a [`Sink`].
#[derive(Debug, Clone)]
pub struct Record {
    /// Severity.
    pub level: Level,
    /// Module path of the emitting code.
    pub target: String,
    /// Span or event name.
    pub name: String,
    /// Typed fields.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Enter/exit/event.
    pub kind: RecordKind,
    /// Span nesting depth on this thread at emission time.
    pub depth: usize,
}

/// Where records go once the layer is enabled.
pub trait Sink: Send + Sync {
    /// Consume one record.
    fn record(&self, rec: &Record);
}

/// A sink that pretty-prints records to stderr, indented by span depth.
pub struct StderrSink;

impl Sink for StderrSink {
    fn record(&self, rec: &Record) {
        let indent = "  ".repeat(rec.depth);
        let mut fields = String::new();
        for (k, v) in &rec.fields {
            fields.push(' ');
            fields.push_str(k);
            fields.push('=');
            fields.push_str(&v.to_string());
        }
        let line = match rec.kind {
            RecordKind::SpanEnter => format!(
                "{indent}{:5} {}::{}{{{}}}",
                rec.level.as_str(),
                rec.target,
                rec.name,
                fields.trim_start()
            ),
            RecordKind::SpanExit { elapsed_ns } => format!(
                "{indent}{:5} {}::{} done in {:.3}ms{}",
                rec.level.as_str(),
                rec.target,
                rec.name,
                elapsed_ns as f64 / 1e6,
                fields
            ),
            RecordKind::Event => format!(
                "{indent}{:5} {}: {}{}",
                rec.level.as_str(),
                rec.target,
                rec.name,
                fields
            ),
        };
        eprintln!("{line}");
    }
}

/// A sink that buffers records in memory — used by tests and by the
/// harness when assembling run reports.
///
/// # Consumer contract
///
/// [`MemorySink::drain`] is an atomic swap: the buffer is emptied and its
/// contents returned in one step under the sink's lock, so **every record
/// is observed by exactly one `drain` call** even with concurrent
/// producers and multiple draining threads. What is *not* atomic is any
/// composition with [`MemorySink::len`]/[`MemorySink::is_empty`]: a
/// `len()`-then-`drain()` sequence can see more (producers appended) or
/// fewer (another consumer drained) records than `len()` reported. Treat
/// `len()` as advisory and size nothing off it; use the length of the
/// `Vec` that `drain()` returns, or [`MemorySink::snapshot`] for a
/// consistent read-only copy. The intended topology is a single consumer;
/// multiple consumers are safe (no loss, no duplication) but partition
/// the records between them.
#[derive(Default, Clone)]
pub struct MemorySink {
    records: Arc<Mutex<Vec<Record>>>,
}

impl MemorySink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take everything recorded so far, leaving the buffer empty. Atomic:
    /// concurrent producers either land in the returned batch or in the
    /// fresh buffer, never both and never neither (see the type-level
    /// consumer contract).
    pub fn drain(&self) -> Vec<Record> {
        std::mem::take(&mut *self.records.lock().expect("sink poisoned"))
    }

    /// Copy of everything recorded so far, without consuming it. Unlike
    /// `len()` + indexed reads, the copy is internally consistent.
    pub fn snapshot(&self) -> Vec<Record> {
        self.records.lock().expect("sink poisoned").clone()
    }

    /// Number of buffered records. Advisory only: by the time the caller
    /// acts on it, producers or another consumer may have changed the
    /// buffer — pair producers/consumers through [`MemorySink::drain`]
    /// instead of `len()`-guarded reads.
    pub fn len(&self) -> usize {
        self.records.lock().expect("sink poisoned").len()
    }

    /// Is the buffer empty? Advisory, like [`MemorySink::len`].
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, rec: &Record) {
        self.records
            .lock()
            .expect("sink poisoned")
            .push(rec.clone());
    }
}

/// One `target=level` directive of the filter.
#[derive(Debug, Clone, PartialEq)]
struct Directive {
    /// Target prefix (`esched_core`, `esched_opt::solver`, …); empty
    /// matches everything.
    prefix: String,
    level: Level,
}

/// A parsed `ESCHED_LOG`-style filter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Filter {
    directives: Vec<Directive>,
}

impl Filter {
    /// Parse a filter string: a comma-separated list of `level` or
    /// `target=level` directives, e.g. `debug` or
    /// `esched_core=trace,esched_opt=info`. Unknown pieces are ignored.
    pub fn parse(spec: &str) -> Filter {
        let mut directives = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() || part.eq_ignore_ascii_case("off") {
                continue;
            }
            if let Some((target, level)) = part.split_once('=') {
                if let Some(level) = Level::from_str_opt(level) {
                    directives.push(Directive {
                        prefix: target.trim().to_string(),
                        level,
                    });
                }
            } else if let Some(level) = Level::from_str_opt(part) {
                directives.push(Directive {
                    prefix: String::new(),
                    level,
                });
            }
        }
        Filter { directives }
    }

    /// The most verbose level any directive allows (the global ceiling).
    fn max_level(&self) -> u8 {
        self.directives
            .iter()
            .map(|d| d.level as u8)
            .max()
            .unwrap_or(0)
    }

    /// Does this filter pass `level` for `target`?
    fn passes(&self, level: Level, target: &str) -> bool {
        let mut best: Option<(usize, Level)> = None;
        for d in &self.directives {
            if target.starts_with(d.prefix.as_str())
                && best.is_none_or(|(len, _)| d.prefix.len() >= len)
            {
                best = Some((d.prefix.len(), d.level));
            }
        }
        match best {
            Some((_, allowed)) => level <= allowed,
            None => false,
        }
    }
}

/// Global level ceiling; 0 = disabled. The only thing the fast path reads.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

struct Subscriber {
    filter: Filter,
    sink: Arc<dyn Sink>,
}

fn subscriber() -> &'static Mutex<Option<Subscriber>> {
    static SUBSCRIBER: OnceLock<Mutex<Option<Subscriber>>> = OnceLock::new();
    SUBSCRIBER.get_or_init(|| Mutex::new(None))
}

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Is tracing enabled at `level` for `target`? The macro fast path: a
/// single relaxed atomic load when tracing is off.
#[inline]
pub fn enabled(level: Level, target: &str) -> bool {
    let ceiling = MAX_LEVEL.load(Ordering::Relaxed);
    if (level as u8) > ceiling {
        return false;
    }
    match &*subscriber().lock().expect("subscriber poisoned") {
        Some(sub) => sub.filter.passes(level, target),
        None => false,
    }
}

/// Install `sink` behind `filter`. Replaces any previous subscriber.
pub fn init_with(filter: Filter, sink: Arc<dyn Sink>) {
    let ceiling = filter.max_level();
    *subscriber().lock().expect("subscriber poisoned") = Some(Subscriber { filter, sink });
    MAX_LEVEL.store(ceiling, Ordering::Relaxed);
}

/// Install a stderr subscriber from the `ESCHED_LOG` environment variable.
/// Returns `true` when tracing ended up enabled. Unset, empty, or `off`
/// leaves tracing fully disabled.
pub fn init_from_env() -> bool {
    match std::env::var("ESCHED_LOG") {
        Ok(spec) => init_from_spec(&spec),
        Err(_) => false,
    }
}

/// Install a stderr subscriber from a filter string (see [`Filter::parse`]).
pub fn init_from_spec(spec: &str) -> bool {
    let filter = Filter::parse(spec);
    if filter.max_level() == 0 {
        disable();
        return false;
    }
    init_with(filter, Arc::new(StderrSink));
    true
}

/// Turn tracing off and drop the subscriber.
pub fn disable() {
    MAX_LEVEL.store(0, Ordering::Relaxed);
    *subscriber().lock().expect("subscriber poisoned") = None;
}

fn dispatch(rec: &Record) {
    if let Some(sub) = &*subscriber().lock().expect("subscriber poisoned") {
        if sub.filter.passes(rec.level, &rec.target) {
            sub.sink.record(rec);
        }
    }
}

/// Emit a point-in-time event. Use via the [`crate::event!`] macro.
pub fn emit_event(level: Level, target: &str, name: &str, fields: Vec<(&'static str, FieldValue)>) {
    dispatch(&Record {
        level,
        target: target.to_string(),
        name: name.to_string(),
        fields,
        kind: RecordKind::Event,
        depth: DEPTH.with(|d| d.get()),
    });
}

/// An RAII span guard: emits an enter record on creation and an exit
/// record (with elapsed wall time) on drop. Obtained via [`crate::span!`].
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    level: Level,
    target: &'static str,
    name: &'static str,
    start: Instant,
}

impl Span {
    /// The no-op span returned while tracing is disabled.
    #[inline]
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// Enter a span (the enabled path of the [`crate::span!`] macro).
    pub fn enter(
        level: Level,
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> Span {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        dispatch(&Record {
            level,
            target: target.to_string(),
            name: name.to_string(),
            fields,
            kind: RecordKind::SpanEnter,
            depth,
        });
        Span {
            inner: Some(SpanInner {
                level,
                target,
                name,
                start: Instant::now(),
            }),
        }
    }

    /// Attach late fields to the exit record by emitting an event inside
    /// the span (fields computed mid-span, e.g. iteration counts).
    pub fn record(&self, name: &str, fields: Vec<(&'static str, FieldValue)>) {
        if let Some(inner) = &self.inner {
            emit_event(inner.level, inner.target, name, fields);
        }
    }

    /// Is this span live (tracing was enabled when it was created)?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let depth = DEPTH.with(|d| {
                let v = d.get().saturating_sub(1);
                d.set(v);
                v
            });
            dispatch(&Record {
                level: inner.level,
                target: inner.target.to_string(),
                name: inner.name.to_string(),
                fields: Vec::new(),
                kind: RecordKind::SpanExit {
                    elapsed_ns: inner.start.elapsed().as_nanos() as u64,
                },
                depth,
            });
        }
    }
}

/// Open a leveled span with typed fields. Returns a [`Span`] guard; bind
/// it (`let _span = span!(…)`) so it stays open for the scope.
///
/// ```
/// use esched_obs::{span, Level};
/// let _s = span!(Level::Debug, "allocation", n_tasks = 20usize, cores = 4usize);
/// ```
#[macro_export]
macro_rules! span {
    ($level:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace::enabled($level, module_path!()) {
            $crate::trace::Span::enter(
                $level,
                module_path!(),
                $name,
                vec![$((stringify!($key), $crate::trace::FieldValue::from($val))),*],
            )
        } else {
            $crate::trace::Span::disabled()
        }
    };
}

/// Emit a leveled point event with typed fields.
///
/// ```
/// use esched_obs::{event, Level};
/// event!(Level::Warn, "solver hit iteration cap", iters = 5000usize);
/// ```
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace::enabled($level, module_path!()) {
            $crate::trace::emit_event(
                $level,
                module_path!(),
                $name,
                vec![$((stringify!($key), $crate::trace::FieldValue::from($val))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The subscriber is global; tests that install one must not run
    // concurrently with each other. A lock serializes them.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_by_default_and_cheap() {
        let _g = serial();
        disable();
        assert!(!enabled(Level::Error, "esched_core"));
        let span = crate::span!(Level::Info, "noop", x = 1usize);
        assert!(!span.is_enabled());
    }

    #[test]
    fn filter_parsing_and_matching() {
        let f = Filter::parse("esched_core=debug,esched_opt=trace,info");
        assert_eq!(f.max_level(), Level::Trace as u8);
        assert!(f.passes(Level::Debug, "esched_core::allocation"));
        assert!(!f.passes(Level::Trace, "esched_core::allocation"));
        assert!(f.passes(Level::Trace, "esched_opt::fista"));
        // Bare level applies to unmatched targets.
        assert!(f.passes(Level::Info, "esched_sim::engine"));
        assert!(!f.passes(Level::Debug, "esched_sim::engine"));
        // `off` and garbage disable nothing but parse cleanly.
        assert_eq!(Filter::parse("off").max_level(), 0);
        assert_eq!(Filter::parse("nonsense").max_level(), 0);
    }

    #[test]
    fn spans_and_events_reach_the_sink() {
        let _g = serial();
        let sink = MemorySink::new();
        init_with(Filter::parse("trace"), Arc::new(sink.clone()));
        {
            let span = crate::span!(Level::Debug, "outer", n = 3usize);
            assert!(span.is_enabled());
            crate::event!(Level::Info, "midpoint", progress = 0.5f64);
        }
        disable();
        let recs = sink.drain();
        assert_eq!(recs.len(), 3); // enter, event, exit
        assert_eq!(recs[0].kind, RecordKind::SpanEnter);
        assert_eq!(recs[0].fields, vec![("n", FieldValue::U64(3))]);
        assert_eq!(recs[1].kind, RecordKind::Event);
        assert_eq!(recs[1].depth, 1); // nested inside the span
        assert!(matches!(recs[2].kind, RecordKind::SpanExit { .. }));
    }

    #[test]
    fn filter_blocks_unmatched_targets() {
        let _g = serial();
        let sink = MemorySink::new();
        init_with(
            Filter::parse("some_other_crate=trace"),
            Arc::new(sink.clone()),
        );
        crate::event!(Level::Info, "should not appear");
        disable();
        assert!(sink.is_empty());
    }

    #[test]
    fn init_from_spec_round_trip() {
        let _g = serial();
        assert!(!init_from_spec("off"));
        assert!(!enabled(Level::Error, "x"));
        assert!(init_from_spec("warn"));
        assert!(enabled(Level::Warn, "anything"));
        assert!(!enabled(Level::Info, "anything"));
        disable();
    }

    #[test]
    fn drain_is_an_atomic_swap_every_record_observed_once() {
        // Exercises the documented consumer contract directly against the
        // Sink impl (no global subscriber): concurrent producers plus a
        // concurrent drainer must neither lose nor duplicate records.
        let sink = MemorySink::new();
        let per_thread = 400usize;
        let n_producers = 4usize;
        let drained = std::thread::scope(|s| {
            for t in 0..n_producers {
                let sink = sink.clone();
                s.spawn(move || {
                    for k in 0..per_thread {
                        sink.record(&Record {
                            level: Level::Info,
                            target: "contract".to_string(),
                            name: format!("{t}:{k}"),
                            fields: Vec::new(),
                            kind: RecordKind::Event,
                            depth: 0,
                        });
                    }
                });
            }
            let sink = sink.clone();
            s.spawn(move || {
                let mut got = Vec::new();
                for _ in 0..50 {
                    got.extend(sink.drain());
                    std::thread::yield_now();
                }
                got
            })
            .join()
            .expect("drainer panicked")
        });
        let mut names: Vec<String> = drained
            .into_iter()
            .chain(sink.drain())
            .map(|r| r.name)
            .collect();
        assert_eq!(names.len(), n_producers * per_thread, "records lost");
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n_producers * per_thread, "records duplicated");
        assert!(sink.is_empty());
    }

    #[test]
    fn snapshot_does_not_consume() {
        let sink = MemorySink::new();
        sink.record(&Record {
            level: Level::Info,
            target: "t".to_string(),
            name: "a".to_string(),
            fields: Vec::new(),
            kind: RecordKind::Event,
            depth: 0,
        });
        assert_eq!(sink.snapshot().len(), 1);
        assert_eq!(sink.snapshot().len(), 1);
        assert_eq!(sink.drain().len(), 1);
        assert!(sink.snapshot().is_empty());
    }

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-2i64), FieldValue::I64(-2));
        assert_eq!(FieldValue::from(0.5f64), FieldValue::F64(0.5));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
    }
}
