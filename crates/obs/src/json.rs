//! Minimal JSON: an insertion-order-preserving value, emitter, parser,
//! and conversion traits.
//!
//! The workspace carries no third-party serialization crates, so every
//! machine-readable artifact (task sets, run reports, experiment results)
//! goes through this module. The emitter uses Rust's shortest-round-trip
//! float formatting, so `parse(to_string(v)) == v` for finite numbers.

use std::fmt;

/// A JSON value. Object keys keep insertion order so emitted artifacts
/// are stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; non-finite values emit as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects (`None` elsewhere or when absent).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view (numbers that are exactly integral).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty serialization (two-space indent). Compact serialization is
    /// the `Display` impl (`value.to_string()` / `format!("{value}")`).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Value::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub position: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our artifacts;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.eat(b'{', "expected object")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Types that can render themselves as a JSON [`Value`].
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Value;
}

/// Types that can be reconstructed from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Parse `self` out of `value`.
    ///
    /// # Errors
    /// [`JsonError`] describing the first structural mismatch.
    fn from_json(value: &Value) -> Result<Self, JsonError>;
}

/// Helper for `FromJson` impls: a structural error at position 0.
pub fn type_error(message: &str) -> JsonError {
    JsonError {
        message: message.to_string(),
        position: 0,
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Num(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl FromJson for f64 {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value.as_f64().ok_or_else(|| type_error("expected number"))
    }
}

impl FromJson for usize {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value
            .as_u64()
            .map(|v| v as usize)
            .ok_or_else(|| type_error("expected non-negative integer"))
    }
}

impl FromJson for bool {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value.as_bool().ok_or_else(|| type_error("expected bool"))
    }
}

impl FromJson for String {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| type_error("expected string"))
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value
            .as_array()
            .ok_or_else(|| type_error("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_parse_round_trip() {
        let v = Value::obj(vec![
            ("name", Value::Str("fig6".into())),
            ("trials", Value::Num(100.0)),
            ("clean", Value::Bool(true)),
            ("gap", Value::Num(1.25e-8)),
            ("xs", Value::Arr(vec![Value::Num(1.5), Value::Null])),
            (
                "nested",
                Value::obj(vec![("k", Value::Str("v\"\n".into()))]),
            ),
        ]);
        for text in [v.to_string(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Value::Num(100.0).to_string(), "100");
        assert_eq!(Value::Num(0.5).to_string(), "0.5");
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parse_standard_documents() {
        let v = parse(r#"{"a": [1, -2.5, 3e2], "b": null, "c": "xA"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2],
            Value::Num(300.0)
        );
        assert_eq!(v.get("b"), Some(&Value::Null));
        assert_eq!(v.get("c").unwrap().as_str(), Some("xA"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "{not json",
            "[1,",
            "\"open",
            "{\"a\":}",
            "[1] trailing",
            "",
            "01a",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 3, "s": "x", "f": 1.5, "b": false}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("x"), None);
    }

    #[test]
    fn to_json_impls() {
        assert_eq!(vec![1.0f64, 2.0].to_json().to_string(), "[1,2]");
        assert_eq!("s".to_json(), Value::Str("s".into()));
        let back: Vec<f64> = FromJson::from_json(&parse("[1, 2.5]").unwrap()).unwrap();
        assert_eq!(back, vec![1.0, 2.5]);
        let err: Result<Vec<f64>, _> = FromJson::from_json(&parse("[1, \"x\"]").unwrap());
        assert!(err.is_err());
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [
            0.1,
            1.0 / 3.0,
            1e-300,
            123456.789012345,
            -2.2250738585072014e-308,
        ] {
            let text = Value::Num(x).to_string();
            assert_eq!(parse(&text).unwrap().as_f64(), Some(x), "{text}");
        }
    }
}
