//! Always-on flight recorder: a fixed-size, lock-free ring of the most
//! recent span/event/counter records, dumped as a Perfetto-loadable JSON
//! post-mortem when something goes wrong.
//!
//! ## Memory model
//!
//! The ring is [`SHARDS`] shards of [`SLOTS_PER_SHARD`] slots; every slot
//! field is an `AtomicU64`, so the whole structure is safe Rust (this
//! crate forbids `unsafe`). Each thread is assigned one shard at first
//! write (round-robin over a global counter), making the common case a
//! **single-writer** shard; a per-slot seqlock makes reads safe anyway:
//!
//! * writer: store `seq = 0` (invalid), `fence(Release)`, store the
//!   payload fields relaxed, then store `seq = epoch` with `Release`;
//! * reader: load `seq` with `Acquire`, read the payload relaxed,
//!   `fence(Acquire)`, re-load `seq` relaxed — the record is accepted only
//!   if both loads agree, are non-zero, and match the payload's own epoch
//!   stamp (the cross-writer tear check for the >-[`SHARDS`]-threads case).
//!
//! Epochs come from one global `fetch_add`, so accepted records have
//! process-wide unique, monotonically increasing epochs — [`snapshot`]
//! sorts by epoch and that *is* the causal order of recording.
//!
//! ## Hot path
//!
//! One relaxed enabled-check, two `fetch_add`s, seven atomic stores, and a
//! monotonic-clock read; no allocation, no locks. Names are `&'static str`
//! interned once per call site ([`crate::flight_span!`] /
//! [`crate::flight_event!`] cache the [`NameId`] in a `OnceLock`). Total
//! footprint is `SHARDS × SLOTS_PER_SHARD × 48 B` (1.5 MiB), allocated
//! lazily on first use.
//!
//! ## Dumps
//!
//! [`dump`] renders the ring as a Chrome Trace Event document (spans as
//! complete `"X"` events on one track per request, instants and counters
//! alongside) that loads directly in Perfetto. The engine calls
//! [`dump_post_mortem`] when a job panics — gated on `ESCHED_FLIGHT_DIR`
//! so tests that *expect* panics don't spray files — and binaries call
//! [`dump_at_exit_if_requested`] (gated on `ESCHED_FLIGHT_EXIT`) before
//! returning from `main`. The recorder itself is on by default; set
//! `ESCHED_FLIGHT=0` (or call [`set_enabled`]) to make every record call a
//! single relaxed load.

use crate::json::Value;
use std::path::{Path, PathBuf};
use std::sync::atomic::{fence, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of ring shards; threads are assigned round-robin, so up to this
/// many concurrently-recording threads never share a shard.
pub const SHARDS: usize = 64;
/// Slots per shard.
pub const SLOTS_PER_SHARD: usize = 512;

/// Total ring capacity in records.
pub fn capacity() -> usize {
    SHARDS * SLOTS_PER_SHARD
}

/// What one flight record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A completed span; `value` is the elapsed nanoseconds and `t_ns` the
    /// end time (start = `t_ns - value`).
    Span,
    /// A point event; `value` is free-form.
    Event,
    /// A sampled quantity rendered as a counter track.
    Counter,
    /// A panic stamp written by `RequestScope::drop` during unwinding.
    Panic,
}

impl FlightKind {
    fn to_u64(self) -> u64 {
        match self {
            FlightKind::Span => 0,
            FlightKind::Event => 1,
            FlightKind::Counter => 2,
            FlightKind::Panic => 3,
        }
    }

    fn from_u64(v: u64) -> Option<Self> {
        match v {
            0 => Some(FlightKind::Span),
            1 => Some(FlightKind::Event),
            2 => Some(FlightKind::Counter),
            3 => Some(FlightKind::Panic),
            _ => None,
        }
    }
}

/// An interned record name. Obtain via [`name_id`]; the
/// [`crate::flight_span!`] / [`crate::flight_event!`] macros cache one per
/// call site so the steady-state cost is a single atomic load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NameId(pub(crate) u32);

fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Intern `name`, returning its stable id. Idempotent; intended to run
/// once per call site, not on the hot path.
pub fn name_id(name: &'static str) -> NameId {
    let mut reg = names().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(i) = reg.iter().position(|&n| n == name) {
        return NameId(i as u32);
    }
    reg.push(name);
    NameId((reg.len() - 1) as u32)
}

fn name_of(id: NameId) -> Option<&'static str> {
    names()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(id.0 as usize)
        .copied()
}

// Enabled flag: 0 = read ESCHED_FLIGHT on first use, 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Is the recorder currently recording? On by default; `ESCHED_FLIGHT=0`
/// (also `off` / `false`) disables it at first use.
#[inline]
pub fn is_enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let off = matches!(
        std::env::var("ESCHED_FLIGHT").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    );
    ENABLED.store(if off { 2 } else { 1 }, Ordering::Relaxed);
    !off
}

/// Turn recording on or off at runtime (overrides the env default).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

struct Slot {
    seq: AtomicU64,
    epoch: AtomicU64,
    meta: AtomicU64,
    request: AtomicU64,
    t_ns: AtomicU64,
    value: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            seq: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            request: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            value: AtomicU64::new(0),
        }
    }
}

struct Shard {
    head: AtomicU64,
    slots: Vec<Slot>,
}

fn shards() -> &'static [Shard] {
    static RING: OnceLock<Vec<Shard>> = OnceLock::new();
    RING.get_or_init(|| {
        (0..SHARDS)
            .map(|_| Shard {
                head: AtomicU64::new(0),
                slots: (0..SLOTS_PER_SHARD).map(|_| Slot::empty()).collect(),
            })
            .collect()
    })
}

static EPOCH: AtomicU64 = AtomicU64::new(0);
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

#[inline]
fn shard_index() -> usize {
    MY_SHARD.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            c.set(v);
            v
        }
    })
}

fn clock_origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

#[inline]
fn now_ns() -> u64 {
    clock_origin().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Write one record tagged with the calling thread's current request
/// (see [`crate::ctx::current_request_raw`]).
#[inline]
pub fn record(kind: FlightKind, name: NameId, value: u64) {
    record_for(kind, name, crate::ctx::current_request_raw(), value);
}

/// Write one record with an explicit request id (0 = none).
pub fn record_for(kind: FlightKind, name: NameId, request: u64, value: u64) {
    if !is_enabled() {
        return;
    }
    let shard = &shards()[shard_index()];
    // Epochs start at 1 so a committed seq is always non-zero.
    let epoch = EPOCH.fetch_add(1, Ordering::Relaxed) + 1;
    let i = (shard.head.fetch_add(1, Ordering::Relaxed) as usize) % SLOTS_PER_SHARD;
    let slot = &shard.slots[i];
    // Seqlock write: invalidate, payload, commit (see module docs).
    slot.seq.store(0, Ordering::Relaxed);
    fence(Ordering::Release);
    slot.epoch.store(epoch, Ordering::Relaxed);
    slot.meta
        .store((kind.to_u64() << 32) | name.0 as u64, Ordering::Relaxed);
    slot.request.store(request, Ordering::Relaxed);
    slot.t_ns.store(now_ns(), Ordering::Relaxed);
    slot.value.store(value, Ordering::Relaxed);
    slot.seq.store(epoch, Ordering::Release);
}

/// Stamp a panic record for the current request. Called from
/// `RequestScope::drop` while the thread is unwinding.
pub fn record_panic() {
    static NAME: OnceLock<NameId> = OnceLock::new();
    record(FlightKind::Panic, *NAME.get_or_init(|| name_id("panic")), 1);
}

/// RAII span: records one [`FlightKind::Span`] with the elapsed
/// nanoseconds when dropped. When the recorder is disabled at `begin`,
/// the guard is fully inert (no clock read, nothing on drop).
#[derive(Debug)]
pub struct FlightSpan {
    name: NameId,
    start_ns: u64,
    armed: bool,
}

impl FlightSpan {
    /// Start a span named by `name`.
    pub fn begin(name: NameId) -> Self {
        let armed = is_enabled();
        Self {
            name,
            start_ns: if armed { now_ns() } else { 0 },
            armed,
        }
    }
}

impl Drop for FlightSpan {
    fn drop(&mut self) {
        if self.armed {
            record(
                FlightKind::Span,
                self.name,
                now_ns().saturating_sub(self.start_ns),
            );
        }
    }
}

/// Flight span with the name-id lookup cached at the call site. Bind the
/// result: `let _fs = flight_span!("der_alloc");`.
#[macro_export]
macro_rules! flight_span {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<$crate::recorder::NameId> = ::std::sync::OnceLock::new();
        $crate::recorder::FlightSpan::begin(*SLOT.get_or_init(|| $crate::recorder::name_id($name)))
    }};
}

/// Flight event with the name-id lookup cached at the call site.
#[macro_export]
macro_rules! flight_event {
    ($name:expr, $value:expr) => {{
        static SLOT: ::std::sync::OnceLock<$crate::recorder::NameId> = ::std::sync::OnceLock::new();
        $crate::recorder::record(
            $crate::recorder::FlightKind::Event,
            *SLOT.get_or_init(|| $crate::recorder::name_id($name)),
            $value as u64,
        );
    }};
}

/// Flight counter sample with the name-id lookup cached at the call site.
#[macro_export]
macro_rules! flight_counter {
    ($name:expr, $value:expr) => {{
        static SLOT: ::std::sync::OnceLock<$crate::recorder::NameId> = ::std::sync::OnceLock::new();
        $crate::recorder::record(
            $crate::recorder::FlightKind::Counter,
            *SLOT.get_or_init(|| $crate::recorder::name_id($name)),
            $value as u64,
        );
    }};
}

/// One decoded, tear-checked record read back from the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// Process-wide unique, monotonically increasing record number.
    pub epoch: u64,
    /// Nanoseconds since the recorder's clock origin. For spans this is
    /// the *end* time; start is `t_ns - value`.
    pub t_ns: u64,
    /// Record kind.
    pub kind: FlightKind,
    /// Interned record name.
    pub name: &'static str,
    /// Originating request id (0 = outside any request scope).
    pub request: u64,
    /// Kind-specific payload (elapsed ns for spans).
    pub value: u64,
}

/// Read every currently valid record, tear-checked, sorted by epoch
/// (recording order). Safe to call while writers are active: a slot being
/// rewritten mid-read fails its seqlock check and is skipped; everything
/// accepted is internally consistent.
pub fn snapshot() -> Vec<FlightRecord> {
    let mut out = Vec::new();
    for shard in shards() {
        for slot in &shard.slots {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 {
                continue;
            }
            let epoch = slot.epoch.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let request = slot.request.load(Ordering::Relaxed);
            let t_ns = slot.t_ns.load(Ordering::Relaxed);
            let value = slot.value.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 != s2 || epoch != s1 {
                continue; // torn: a writer got in between.
            }
            let Some(kind) = FlightKind::from_u64(meta >> 32) else {
                continue;
            };
            let Some(name) = name_of(NameId((meta & 0xffff_ffff) as u32)) else {
                continue;
            };
            out.push(FlightRecord {
                epoch,
                t_ns,
                kind,
                name,
                request,
                value,
            });
        }
    }
    out.sort_by_key(|r| r.epoch);
    out
}

/// Invalidate every slot (test scaffolding; epochs keep increasing, so
/// monotonicity holds across clears). Records committed concurrently with
/// the clear may survive it.
pub fn clear() {
    for shard in shards() {
        for slot in &shard.slots {
            slot.seq.store(0, Ordering::Relaxed);
        }
    }
}

/// Render records as a Chrome Trace Event document: one track per
/// originating request (plus an `engine` track for request-less records)
/// under [`crate::chrome::FLIGHT_PID`]; spans become complete `"X"`
/// events, events/panics instants, counters counter tracks. Loads
/// directly in Perfetto.
pub fn to_chrome(records: &[FlightRecord]) -> Value {
    use crate::chrome::{event_obj, process_name_event, thread_name_event, trace_document};
    const PID: u64 = crate::chrome::FLIGHT_PID;

    let mut requests: Vec<u64> = records.iter().map(|r| r.request).collect();
    requests.sort_unstable();
    requests.dedup();

    let mut events: Vec<Value> = vec![process_name_event(PID, "esched flight recorder")];
    for &req in &requests {
        let label = if req == 0 {
            "engine".to_string()
        } else {
            format!("request {req}")
        };
        events.push(thread_name_event(PID, req, &label));
    }

    // (start ts µs, epoch) orders the payload events.
    let mut keyed: Vec<(f64, u64, Value)> = Vec::with_capacity(records.len());
    for r in records {
        let ts_end = r.t_ns as f64 / 1_000.0;
        let epoch_arg = ("epoch".to_string(), Value::Num(r.epoch as f64));
        let ev = match r.kind {
            FlightKind::Span => {
                let start = r.t_ns.saturating_sub(r.value) as f64 / 1_000.0;
                let mut ev = event_obj(
                    "X",
                    r.name,
                    "flight",
                    start,
                    PID,
                    r.request,
                    vec![epoch_arg],
                );
                if let Value::Obj(pairs) = &mut ev {
                    pairs.push(("dur".to_string(), Value::Num(r.value as f64 / 1_000.0)));
                }
                (start, r.epoch, ev)
            }
            FlightKind::Event | FlightKind::Panic => {
                let mut ev = event_obj(
                    "i",
                    r.name,
                    "flight",
                    ts_end,
                    PID,
                    r.request,
                    vec![("value".to_string(), Value::Num(r.value as f64)), epoch_arg],
                );
                if let Value::Obj(pairs) = &mut ev {
                    // Panics get global scope so they are visible at any zoom.
                    let scope = if r.kind == FlightKind::Panic {
                        "g"
                    } else {
                        "t"
                    };
                    pairs.push(("s".to_string(), Value::Str(scope.to_string())));
                }
                (ts_end, r.epoch, ev)
            }
            FlightKind::Counter => (
                ts_end,
                r.epoch,
                event_obj(
                    "C",
                    r.name,
                    "counter",
                    ts_end,
                    PID,
                    r.request,
                    vec![("value".to_string(), Value::Num(r.value as f64))],
                ),
            ),
        };
        keyed.push(ev);
    }
    keyed.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite timestamps")
            .then(a.1.cmp(&b.1))
    });
    events.extend(keyed.into_iter().map(|(_, _, e)| e));
    trace_document(events)
}

/// [`to_chrome`] of a fresh [`snapshot`].
pub fn dump() -> Value {
    to_chrome(&snapshot())
}

/// Write [`dump`] to `path` as pretty JSON.
///
/// # Errors
/// Propagates filesystem errors.
pub fn dump_to(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, dump().to_string_pretty())
}

static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Post-mortem dumps that actually reached the filesystem in this process
/// — the exit hook's dedupe generation. Distinct from [`DUMP_SEQ`], which
/// reserves unique filenames *before* writing and therefore also counts
/// dumps whose write failed.
static DUMPS_WRITTEN: AtomicU64 = AtomicU64::new(0);

/// How many post-mortem dumps this process has successfully written.
pub fn post_mortem_generation() -> u64 {
    DUMPS_WRITTEN.load(Ordering::Relaxed)
}

/// Post-mortem dump, gated on the `ESCHED_FLIGHT_DIR` environment
/// variable: when set, writes the current ring as
/// `<dir>/flight-postmortem-<pid>-<n>.json` (annotated with `reason`) and
/// returns the path. When unset — the default, so panic-expecting tests
/// don't spray files — this is a no-op returning `None`.
pub fn dump_post_mortem(reason: &str) -> Option<PathBuf> {
    let dir = PathBuf::from(std::env::var_os("ESCHED_FLIGHT_DIR")?);
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!(
        "flight-postmortem-{}-{seq}.json",
        std::process::id()
    ));
    let mut doc = dump();
    if let Value::Obj(pairs) = &mut doc {
        pairs.push((
            "otherData".to_string(),
            Value::obj(vec![("reason", Value::Str(reason.to_string()))]),
        ));
    }
    std::fs::create_dir_all(&dir).ok()?;
    std::fs::write(&path, doc.to_string_pretty()).ok()?;
    DUMPS_WRITTEN.fetch_add(1, Ordering::Relaxed);
    Some(path)
}

/// Exit-hook dump, gated on `ESCHED_FLIGHT_EXIT`: when set to a path,
/// writes the ring there and returns the path. Binaries call this once at
/// the end of `main` (std has no portable atexit surface, and the dump
/// must run before the process tears the ring down anyway).
///
/// Deduped against the panic path: when a post-mortem dump already
/// reached the filesystem in this process ([`post_mortem_generation`]
/// `> 0`), the exit hook is a no-op — the ring was already captured with
/// the panic reason attached, and a second dump at exit would
/// double-report the same incident with *less* context.
pub fn dump_at_exit_if_requested() -> Option<PathBuf> {
    let path = std::env::var_os("ESCHED_FLIGHT_EXIT")?;
    if path.is_empty() || path == "0" {
        return None;
    }
    if DUMPS_WRITTEN.load(Ordering::Relaxed) > 0 {
        return None;
    }
    let path = PathBuf::from(path);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok()?;
    }
    dump_to(&path).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    // The ring is process-global and other obs tests record into it
    // concurrently; every assertion here filters by names unique to the
    // test, so the tests are order- and concurrency-independent.

    fn mine<'a>(records: &'a [FlightRecord], prefix: &str) -> Vec<&'a FlightRecord> {
        records
            .iter()
            .filter(|r| r.name.starts_with(prefix))
            .collect()
    }

    #[test]
    fn record_roundtrip_and_epoch_order() {
        set_enabled(true);
        let a = name_id("test.rec.alpha");
        let b = name_id("test.rec.beta");
        record_for(FlightKind::Event, a, 7, 11);
        record_for(FlightKind::Counter, b, 7, 22);
        let snap = snapshot();
        let got = mine(&snap, "test.rec.");
        assert!(got.len() >= 2);
        let alpha = got.iter().find(|r| r.name == "test.rec.alpha").unwrap();
        assert_eq!(alpha.kind, FlightKind::Event);
        assert_eq!(alpha.request, 7);
        assert_eq!(alpha.value, 11);
        let beta = got.iter().find(|r| r.name == "test.rec.beta").unwrap();
        assert!(beta.epoch > alpha.epoch, "snapshot must sort by epoch");
        // Same name interns to the same id.
        assert_eq!(name_id("test.rec.alpha"), a);
    }

    #[test]
    fn span_macro_records_elapsed() {
        set_enabled(true);
        {
            let _s = crate::flight_span!("test.span.timed");
            std::hint::black_box(0);
        }
        let snap = snapshot();
        let spans = mine(&snap, "test.span.timed");
        assert!(!spans.is_empty());
        assert!(spans.iter().all(|r| r.kind == FlightKind::Span));
        // End time is at or after the elapsed duration.
        assert!(spans.iter().all(|r| r.t_ns >= r.value));
    }

    #[test]
    fn disabled_recorder_writes_nothing() {
        set_enabled(false);
        crate::flight_event!("test.disabled.event", 1);
        {
            let _s = crate::flight_span!("test.disabled.span");
        }
        set_enabled(true);
        let snap = snapshot();
        assert!(mine(&snap, "test.disabled.").is_empty());
    }

    #[test]
    fn wraparound_keeps_the_most_recent_records() {
        set_enabled(true);
        let name = name_id("test.wrap.burst");
        let total = SLOTS_PER_SHARD * 2 + 17;
        for k in 0..total {
            record_for(FlightKind::Event, name, 1, k as u64);
        }
        let snap = snapshot();
        let got = mine(&snap, "test.wrap.burst");
        // One thread writes one shard: at most a shard's worth survives,
        // and they are exactly the most recent values written.
        assert!(got.len() <= SLOTS_PER_SHARD);
        assert!(!got.is_empty());
        let min_kept = got.iter().map(|r| r.value).min().unwrap();
        assert!(
            min_kept >= (total - SLOTS_PER_SHARD) as u64,
            "old records must be overwritten (min kept {min_kept})"
        );
        // Bounded memory: a snapshot can never exceed ring capacity.
        assert!(snap.len() <= capacity());
        // Epochs are strictly increasing after the sort.
        assert!(snap.windows(2).all(|w| w[0].epoch < w[1].epoch));
    }

    #[test]
    fn chrome_dump_parses_and_groups_by_request() {
        set_enabled(true);
        let ev = name_id("test.chrome.event");
        let sp = name_id("test.chrome.span");
        record_for(FlightKind::Event, ev, 41, 5);
        record_for(FlightKind::Span, sp, 42, 1_000);
        let snap = snapshot();
        let picked: Vec<FlightRecord> = snap
            .iter()
            .filter(|r| r.name.starts_with("test.chrome."))
            .copied()
            .collect();
        let doc = to_chrome(&picked);
        let parsed = parse(&doc.to_string_pretty()).unwrap();
        let evs = parsed.get("traceEvents").unwrap().as_array().unwrap();
        // Track names for both requests plus the process name.
        let tracks: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert!(tracks.contains(&"request 41") && tracks.contains(&"request 42"));
        // The span renders as a complete event with a duration.
        let x = evs
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .expect("span renders as X");
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(1.0));
        assert_eq!(x.get("tid").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn post_mortem_is_gated_on_env() {
        // The test env does not set ESCHED_FLIGHT_DIR, so this must be a
        // no-op (the engine's poisoned-job tests rely on that).
        if std::env::var_os("ESCHED_FLIGHT_DIR").is_none() {
            assert_eq!(dump_post_mortem("test"), None);
        }
    }
}
