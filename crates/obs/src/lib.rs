//! # esched-obs
//!
//! Observability and run-infrastructure layer for the `esched` workspace.
//!
//! The workspace is fully self-contained (no third-party crates), so this
//! crate supplies, from scratch, the substrate every other crate leans on
//! to *see* what the scheduling pipeline is doing:
//!
//! * [`trace`] — a lightweight `tracing`-style span/event layer that is
//!   **zero-cost when disabled**: every macro call is gated on a single
//!   relaxed atomic load, and no field values are materialized unless a
//!   subscriber is installed and the level/target filter passes. Enable it
//!   with [`trace::init_from_env`] (reads `ESCHED_LOG`, e.g.
//!   `ESCHED_LOG=debug` or `ESCHED_LOG=esched_core=trace,esched_opt=info`).
//! * [`metrics`] — a process-global metrics registry (lock-cheap
//!   counters/gauges/histograms, `esched.<crate>.<quantity>` naming, a
//!   name-ordered [`metrics::snapshot`]) wired into the solver, packing,
//!   and simulator hot paths; the benchmark harness attaches per-entry
//!   snapshot deltas to `BENCH_*.json`.
//! * [`chrome`] — Chrome-trace (`chrome://tracing` / Perfetto) export: a
//!   [`chrome::ChromeTraceSink`] that renders the span hierarchy as
//!   `trace_event` JSON, and [`chrome::schedule_trace`] which renders a
//!   finished schedule as one trace thread per core with a frequency
//!   counter track.
//! * [`ctx`] — request-scoped trace context: process-unique
//!   [`ctx::RequestId`]s, a thread-local [`ctx::RequestScope`], and the
//!   per-phase [`ctx::TraceCtx`] latency breakdown the engine attaches to
//!   outcomes (excluded from canonical JSON, so determinism comparisons
//!   never see it).
//! * [`recorder`] — the always-on **flight recorder**: a fixed-size,
//!   lock-free (seqlock-sharded, zero-allocation) ring of recent
//!   span/event records that dumps a Perfetto-loadable post-mortem on a
//!   job panic (`ESCHED_FLIGHT_DIR`), on demand ([`recorder::dump`]), or
//!   at exit (`ESCHED_FLIGHT_EXIT`). Disable with `ESCHED_FLIGHT=0`.
//! * [`export`] — the continuous exporter: a background sampler thread
//!   emitting [`metrics::snapshot`] deltas as a JSONL time series plus a
//!   Prometheus-style text exposition file.
//! * [`health`] — the streaming SLO/health layer: lock-free sliding-window
//!   log2 quantile sketches ([`health::WindowedSketch`]), a declarative
//!   [`health::SloPolicy`], and the [`health::HealthMonitor`] anomaly
//!   watchdog (latched breach events, degraded/healthy state machine,
//!   energy-regret audit intake) the online engine threads through its
//!   replan path.
//! * [`json`] — an insertion-order-preserving JSON value, emitter, and
//!   parser plus the [`json::ToJson`]/[`json::FromJson`] traits used for
//!   machine-readable artifacts (task sets, run reports).
//! * [`stats`] — percentile and histogram helpers for aggregating
//!   per-trial telemetry.
//! * [`report`] — the [`report::RunReport`] structured artifact the
//!   experiment harness writes next to figure outputs.
//! * [`rng`] — a deterministic, seedable ChaCha8 generator so workloads
//!   and randomized tests are reproducible bit-for-bit without external
//!   RNG crates.
//! * [`pool`] — the std-only work-stealing thread pool every parallel
//!   consumer shares: `esched-engine` for whole requests, `esched-core`'s
//!   allocator for heavy subinterval ranges, and `esched-opt`'s
//!   decomposed ADMM solver for per-task subproblems
//!   ([`pool::Pool::scoped_run`]). It lives here, below the algorithm
//!   crates, precisely so `esched-opt` can use it without a cycle.
//!
//! The span hierarchy wired through the workspace (see DESIGN.md,
//! "Observability"):
//!
//! ```text
//! der_schedule / even_schedule          (esched-core, INFO)
//! ├── timeline_build                    (esched-subinterval, DEBUG)
//! ├── ideal_schedule                    (esched-core, DEBUG)
//! ├── allocate_der | allocate_even      (esched-core, DEBUG; n_heavy field)
//! └── refine_frequencies                (esched-core, DEBUG)
//! reclaim_der / quantize_schedule       (esched-core, DEBUG)
//! solve_pgd|fista|frank_wolfe|
//!   block_descent|barrier               (esched-opt, DEBUG; WARN on cap)
//! simulate                              (esched-sim, INFO; counter event)
//! check_fuzz                            (esched-check, INFO; per-iteration
//!                                        violation / shrink counters)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod ctx;
pub mod export;
pub mod health;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod recorder;
pub mod report;
pub mod rng;
pub mod stats;
pub mod trace;

pub use ctx::{RequestId, RequestScope, TraceCtx};
pub use export::{Exporter, ExporterConfig};
pub use health::{
    HealthEvent, HealthEventKind, HealthMonitor, HealthReport, HealthState, SloPolicy, WindowStats,
    WindowedCounter, WindowedSketch,
};
pub use json::{FromJson, JsonError, ToJson, Value};
pub use pool::{Pool, PoolError};
pub use recorder::{FlightKind, FlightRecord, FlightSpan};
pub use report::{RunReport, TrialRecord};
pub use rng::ChaCha8;
pub use trace::Level;
