//! Chrome-trace (`chrome://tracing` / Perfetto) export.
//!
//! Two converters share the [Trace Event Format] JSON emitted here:
//!
//! * [`ChromeTraceSink`] — a [`Sink`] that turns the live [`crate::trace`]
//!   span hierarchy into duration events: span enter → `"B"`, span exit →
//!   `"E"`, point events → `"i"` (instant) or `"C"` (counter, when every
//!   field is numeric — e.g. the `simulate` engine's "simulation done"
//!   counters render as tracks). Timestamps are microseconds since the
//!   sink was created, taken from one monotonic clock, so they are
//!   non-decreasing per thread; each OS thread becomes one trace `tid`.
//! * [`schedule_trace`] — renders a finished schedule (one `"thread"` per
//!   core, one duration event per segment) with a per-core frequency
//!   counter track, so the *produced* schedule opens next to the solver
//!   run that produced it. The schedule side uses `pid` [`SCHEDULE_PID`],
//!   the sink uses [`SPANS_PID`]; [`merge`] concatenates any number of
//!   traces into one file for exactly that side-by-side view.
//!
//! The output loads directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`; it is plain [`Value`] JSON, so tests parse it back
//! with [`crate::json::parse`] and assert balance/monotonicity.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::Value;
use crate::trace::{FieldValue, Record, RecordKind, Sink};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// `pid` used for span/event records captured by [`ChromeTraceSink`].
pub const SPANS_PID: u64 = 1;
/// `pid` used for schedule renderings from [`schedule_trace`].
pub const SCHEDULE_PID: u64 = 2;
/// `pid` used for flight-recorder dumps ([`crate::recorder::to_chrome`]).
pub const FLIGHT_PID: u64 = 3;
/// `pid` used for per-request tracks when a [`ChromeTraceSink`] runs in
/// request-scoped mode ([`ChromeTraceSink::request_scoped`]); separate
/// from [`SPANS_PID`] so request ids never collide with thread indices.
pub const REQUESTS_PID: u64 = 4;
/// `pid` used for solver convergence counter tracks
/// ([`convergence_trace`]).
pub const CONVERGENCE_PID: u64 = 5;

/// One segment of a schedule, decoupled from `esched-types` (which
/// depends on this crate): the caller maps its own segment type into
/// this plain record. Times are in the schedule's own unit (seconds in
/// this workspace) and are scaled to microseconds by [`schedule_trace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSegment {
    /// Task id (becomes the event name `task <id>`).
    pub task: usize,
    /// Core the segment runs on (becomes the trace `tid`).
    pub core: usize,
    /// Segment start time.
    pub start: f64,
    /// Segment end time.
    pub end: f64,
    /// Execution frequency (rendered as the per-core counter track).
    pub freq: f64,
}

struct ChromeInner {
    start: Instant,
    /// Known OS threads, in first-seen order; index = trace `tid`.
    threads: Vec<ThreadId>,
    /// Request ids seen while in request-scoped mode, first-seen order.
    requests: Vec<u64>,
    /// Group events by originating request instead of OS thread.
    request_scoped: bool,
    events: Vec<Value>,
}

/// A [`Sink`] that buffers trace-event JSON for the records it receives.
///
/// Install it with [`crate::trace::init_with`], run the workload, then
/// call [`ChromeTraceSink::to_json`] (after `trace::disable()` or once
/// all spans have closed — a still-open span would leave an unbalanced
/// `"B"`). Clones share the same buffer.
#[derive(Clone)]
pub struct ChromeTraceSink {
    inner: Arc<Mutex<ChromeInner>>,
}

impl Default for ChromeTraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTraceSink {
    /// New empty sink; timestamps are measured from this call.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Mutex::new(ChromeInner {
                start: Instant::now(),
                threads: Vec::new(),
                requests: Vec::new(),
                request_scoped: false,
                events: Vec::new(),
            })),
        }
    }

    /// New empty sink in **request-scoped mode**: records produced while
    /// the emitting thread is inside a `RequestScope` land on a
    /// per-request track (`pid` [`REQUESTS_PID`], `tid` = request id)
    /// instead of the emitting OS thread's track. This is what keeps a
    /// stolen job's spans grouped with its originating request — under
    /// the work-stealing pool, the OS thread that *finishes* a request is
    /// not always the one that represents it. Records emitted outside
    /// any request scope fall back to thread tracks as in [`Self::new`].
    pub fn request_scoped() -> Self {
        let sink = Self::new();
        sink.inner
            .lock()
            .expect("chrome sink poisoned")
            .request_scoped = true;
        sink
    }

    /// Number of buffered trace events.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("chrome sink poisoned")
            .events
            .len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The buffered events as a complete Trace Event Format document.
    pub fn to_json(&self) -> Value {
        let inner = self.inner.lock().expect("chrome sink poisoned");
        let mut events: Vec<Value> = vec![process_name_event(SPANS_PID, "esched spans")];
        for (tid, _) in inner.threads.iter().enumerate() {
            events.push(thread_name_event(
                SPANS_PID,
                tid as u64,
                &format!("thread {tid}"),
            ));
        }
        if !inner.requests.is_empty() {
            events.push(process_name_event(REQUESTS_PID, "esched requests"));
            for &req in &inner.requests {
                events.push(thread_name_event(
                    REQUESTS_PID,
                    req,
                    &format!("request {req}"),
                ));
            }
        }
        events.extend(inner.events.iter().cloned());
        trace_document(events)
    }

    /// Write [`ChromeTraceSink::to_json`] to `path` as pretty JSON.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string_pretty())
    }
}

impl Sink for ChromeTraceSink {
    fn record(&self, rec: &Record) {
        let thread = std::thread::current().id();
        let request = crate::ctx::current_request_raw();
        let mut inner = self.inner.lock().expect("chrome sink poisoned");
        let ts = inner.start.elapsed().as_nanos() as f64 / 1_000.0;
        // In request-scoped mode, records emitted inside a RequestScope
        // land on the request's own track — tid = request id under
        // REQUESTS_PID — so a job finished by a *stealing* worker still
        // groups with its originating request. Everything else (and every
        // record in plain mode) uses the emitting OS thread's track.
        let (pid, tid) = if inner.request_scoped && request != 0 {
            if !inner.requests.contains(&request) {
                inner.requests.push(request);
            }
            (REQUESTS_PID, request)
        } else {
            let tid = match inner.threads.iter().position(|&t| t == thread) {
                Some(i) => i,
                None => {
                    inner.threads.push(thread);
                    inner.threads.len() - 1
                }
            } as u64;
            (SPANS_PID, tid)
        };
        let mut ev = match &rec.kind {
            RecordKind::SpanEnter => {
                duration_event("B", &rec.name, &rec.target, ts, pid, tid, &rec.fields)
            }
            RecordKind::SpanExit { .. } => {
                duration_event("E", &rec.name, &rec.target, ts, pid, tid, &rec.fields)
            }
            RecordKind::Event => {
                let numeric = !rec.fields.is_empty()
                    && rec.fields.iter().all(|(_, v)| field_num(v).is_some());
                if numeric {
                    counter_event(pid, &rec.name, ts, tid, &rec.fields)
                } else {
                    instant_event(&rec.name, &rec.target, ts, pid, tid, &rec.fields)
                }
            }
        };
        // Tag with the originating request so downstream tooling (and
        // `merge`d documents) can regroup events regardless of mode.
        if request != 0 {
            if let Value::Obj(pairs) = &mut ev {
                pairs.push(("req".to_string(), Value::Num(request as f64)));
            }
        }
        inner.events.push(ev);
    }
}

/// Render a schedule as one Trace Event Format document: one trace
/// "thread" per core (named `core <k>`), one `"B"`/`"E"` pair per
/// segment, and a `core<k> freq` counter track that steps to the
/// segment's frequency at its start and back to zero at its end.
///
/// `time_scale_us` converts schedule time units to microseconds; the
/// workspace's schedules are in abstract seconds, so pass `1e6` (what
/// [`schedule_trace_seconds`] does). Events are emitted sorted by
/// timestamp (ends before counters before begins at equal times), so
/// per-`tid` timestamps are non-decreasing.
pub fn schedule_trace(cores: usize, segments: &[TraceSegment], time_scale_us: f64) -> Value {
    // (ts, rank, event): rank orders E(0) < C(1) < B(2) at equal times so
    // a gapless handover closes the outgoing segment before the next opens.
    let mut keyed: Vec<(f64, u8, Value)> = Vec::with_capacity(segments.len() * 4);
    for seg in segments {
        let t0 = seg.start * time_scale_us;
        let t1 = seg.end * time_scale_us;
        let name = format!("task {}", seg.task);
        let args = vec![("f".to_string(), Value::Num(seg.freq))];
        keyed.push((
            t0,
            2,
            event_obj(
                "B",
                &name,
                "schedule",
                t0,
                SCHEDULE_PID,
                seg.core as u64,
                args.clone(),
            ),
        ));
        keyed.push((
            t1,
            0,
            event_obj(
                "E",
                &name,
                "schedule",
                t1,
                SCHEDULE_PID,
                seg.core as u64,
                Vec::new(),
            ),
        ));
        let track = format!("core{} freq", seg.core);
        keyed.push((
            t0,
            2,
            event_obj(
                "C",
                &track,
                "schedule",
                t0,
                SCHEDULE_PID,
                seg.core as u64,
                vec![("f".to_string(), Value::Num(seg.freq))],
            ),
        ));
        keyed.push((
            t1,
            1,
            event_obj(
                "C",
                &track,
                "schedule",
                t1,
                SCHEDULE_PID,
                seg.core as u64,
                vec![("f".to_string(), Value::Num(0.0))],
            ),
        ));
    }
    keyed.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite timestamps")
            .then(a.1.cmp(&b.1))
    });
    let mut events: Vec<Value> = vec![process_name_event(SCHEDULE_PID, "esched schedule")];
    for core in 0..cores {
        events.push(thread_name_event(
            SCHEDULE_PID,
            core as u64,
            &format!("core {core}"),
        ));
    }
    events.extend(keyed.into_iter().map(|(_, _, e)| e));
    trace_document(events)
}

/// [`schedule_trace`] for schedules whose times are in seconds.
pub fn schedule_trace_seconds(cores: usize, segments: &[TraceSegment]) -> Value {
    schedule_trace(cores, segments, 1e6)
}

/// One per-iteration sample of a solver run, decoupled from `esched-opt`
/// (which depends on this crate): the caller maps its own iteration-trace
/// type into this plain record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergencePoint {
    /// Iteration number (sweeps for block descent, Newton steps for the
    /// barrier method).
    pub iter: usize,
    /// Objective value at this iterate.
    pub objective: f64,
    /// Last known certified duality gap (may be `inf` before the first
    /// gap check; non-finite values are skipped in the rendering).
    pub gap: f64,
    /// Step size / step-quality scalar (solver-specific: step length for
    /// the gradient methods, `γ` for Frank–Wolfe, objective decrease for
    /// block descent, barrier `μ` progress for interior point).
    pub step: f64,
}

/// Render a solver's per-iteration trace as Chrome **counter tracks**
/// (`"C"` events under [`CONVERGENCE_PID`], one track each for objective,
/// gap, and step, named `<solver> <quantity>`), with the iteration number
/// as the time axis (1 iteration = 1 µs). Merge with a span capture via
/// [`merge`] to inspect convergence next to the run that produced it.
pub fn convergence_trace(solver: &str, points: &[ConvergencePoint]) -> Value {
    let mut events: Vec<Value> = vec![process_name_event(
        CONVERGENCE_PID,
        &format!("esched solver convergence: {solver}"),
    )];
    for p in points {
        let ts = p.iter as f64;
        for (quantity, v) in [("objective", p.objective), ("gap", p.gap), ("step", p.step)] {
            if !v.is_finite() {
                continue;
            }
            events.push(event_obj(
                "C",
                &format!("{solver} {quantity}"),
                "convergence",
                ts,
                CONVERGENCE_PID,
                0,
                vec![(quantity.to_string(), Value::Num(v))],
            ));
        }
    }
    trace_document(events)
}

/// Concatenate several Trace Event Format documents into one (e.g. a
/// [`ChromeTraceSink`] capture plus a [`schedule_trace`] rendering).
/// Inputs that are not documents produced by this module contribute no
/// events.
pub fn merge(traces: &[Value]) -> Value {
    let mut events = Vec::new();
    for t in traces {
        if let Some(Value::Arr(evs)) = t.get("traceEvents") {
            events.extend(evs.iter().cloned());
        }
    }
    trace_document(events)
}

pub(crate) fn trace_document(events: Vec<Value>) -> Value {
    Value::obj(vec![
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ])
}

fn field_num(v: &FieldValue) -> Option<f64> {
    match v {
        FieldValue::U64(x) => Some(*x as f64),
        FieldValue::I64(x) => Some(*x as f64),
        FieldValue::F64(x) => Some(*x),
        FieldValue::Bool(_) | FieldValue::Str(_) => None,
    }
}

fn field_args(fields: &[(&'static str, FieldValue)]) -> Vec<(String, Value)> {
    fields
        .iter()
        .map(|(k, v)| {
            let jv = match v {
                FieldValue::U64(x) => Value::Num(*x as f64),
                FieldValue::I64(x) => Value::Num(*x as f64),
                FieldValue::F64(x) => Value::Num(*x),
                FieldValue::Bool(b) => Value::Bool(*b),
                FieldValue::Str(s) => Value::Str(s.clone()),
            };
            (k.to_string(), jv)
        })
        .collect()
}

pub(crate) fn event_obj(
    ph: &str,
    name: &str,
    cat: &str,
    ts: f64,
    pid: u64,
    tid: u64,
    args: Vec<(String, Value)>,
) -> Value {
    let mut pairs = vec![
        ("ph".to_string(), Value::Str(ph.to_string())),
        ("name".to_string(), Value::Str(name.to_string())),
        ("cat".to_string(), Value::Str(cat.to_string())),
        ("ts".to_string(), Value::Num(ts)),
        ("pid".to_string(), Value::Num(pid as f64)),
        ("tid".to_string(), Value::Num(tid as f64)),
    ];
    if !args.is_empty() {
        pairs.push(("args".to_string(), Value::Obj(args)));
    }
    Value::Obj(pairs)
}

fn duration_event(
    ph: &str,
    name: &str,
    target: &str,
    ts: f64,
    pid: u64,
    tid: u64,
    fields: &[(&'static str, FieldValue)],
) -> Value {
    event_obj(ph, name, target, ts, pid, tid, field_args(fields))
}

fn instant_event(
    name: &str,
    target: &str,
    ts: f64,
    pid: u64,
    tid: u64,
    fields: &[(&'static str, FieldValue)],
) -> Value {
    let mut ev = event_obj("i", name, target, ts, pid, tid, field_args(fields));
    if let Value::Obj(pairs) = &mut ev {
        // Instant scope: thread.
        pairs.push(("s".to_string(), Value::Str("t".to_string())));
    }
    ev
}

fn counter_event(
    pid: u64,
    name: &str,
    ts: f64,
    tid: u64,
    fields: &[(&'static str, FieldValue)],
) -> Value {
    let args = fields
        .iter()
        .filter_map(|(k, v)| field_num(v).map(|n| (k.to_string(), Value::Num(n))))
        .collect();
    event_obj("C", name, "counter", ts, pid, tid, args)
}

pub(crate) fn process_name_event(pid: u64, name: &str) -> Value {
    event_obj(
        "M",
        "process_name",
        "__metadata",
        0.0,
        pid,
        0,
        vec![("name".to_string(), Value::Str(name.to_string()))],
    )
}

pub(crate) fn thread_name_event(pid: u64, tid: u64, name: &str) -> Value {
    event_obj(
        "M",
        "thread_name",
        "__metadata",
        0.0,
        pid,
        tid,
        vec![("name".to_string(), Value::Str(name.to_string()))],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::trace::{disable, init_with, Filter, Level};

    // Installing a subscriber mutates global state; serialize with the
    // trace tests' convention.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn phases(doc: &Value) -> Vec<String> {
        doc.get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap().to_string())
            .collect()
    }

    #[test]
    fn sink_produces_balanced_b_e_pairs() {
        let _g = serial();
        let sink = ChromeTraceSink::new();
        init_with(Filter::parse("trace"), Arc::new(sink.clone()));
        {
            let _outer = crate::span!(Level::Info, "outer", n = 2usize);
            {
                let _inner = crate::span!(Level::Debug, "inner");
            }
            crate::event!(Level::Info, "note", msg = "hello");
            crate::event!(Level::Debug, "counters", a = 1usize, b = 2.5f64);
        }
        disable();
        let doc = sink.to_json();
        let text = doc.to_string_pretty();
        let parsed = parse(&text).unwrap();
        let ph = phases(&parsed);
        assert_eq!(ph.iter().filter(|p| *p == "B").count(), 2);
        assert_eq!(ph.iter().filter(|p| *p == "E").count(), 2);
        // The all-numeric event renders as a counter, the other as instant.
        assert_eq!(ph.iter().filter(|p| *p == "C").count(), 1);
        assert_eq!(ph.iter().filter(|p| *p == "i").count(), 1);
        // Timestamps are non-decreasing in emission order (one thread).
        let evs = parsed.get("traceEvents").unwrap().as_array().unwrap();
        let ts: Vec<f64> = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() != Some("M"))
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "ts not monotonic: {ts:?}"
        );
    }

    #[test]
    fn schedule_trace_has_core_threads_and_freq_counters() {
        let segs = [
            TraceSegment {
                task: 0,
                core: 0,
                start: 0.0,
                end: 1.5,
                freq: 0.8,
            },
            TraceSegment {
                task: 1,
                core: 1,
                start: 0.5,
                end: 2.0,
                freq: 1.2,
            },
        ];
        let doc = schedule_trace_seconds(2, &segs);
        let parsed = parse(&doc.to_string_pretty()).unwrap();
        let evs = parsed.get("traceEvents").unwrap().as_array().unwrap();
        // 1 process_name + 2 thread_name + per segment (B + E + 2 C).
        assert_eq!(evs.len(), 3 + 4 * segs.len());
        let ph = phases(&parsed);
        assert_eq!(ph.iter().filter(|p| *p == "B").count(), 2);
        assert_eq!(ph.iter().filter(|p| *p == "E").count(), 2);
        assert_eq!(ph.iter().filter(|p| *p == "C").count(), 4);
        // Frequency counter carries the segment frequency at start.
        let c0 = evs
            .iter()
            .find(|e| {
                e.get("ph").unwrap().as_str() == Some("C")
                    && e.get("name").unwrap().as_str() == Some("core0 freq")
            })
            .unwrap();
        assert_eq!(
            c0.get("args").unwrap().get("f").unwrap().as_f64(),
            Some(0.8)
        );
    }

    #[test]
    fn request_scoped_sink_groups_by_request_not_thread() {
        let _g = serial();
        let sink = ChromeTraceSink::request_scoped();
        init_with(Filter::parse("trace"), Arc::new(sink.clone()));
        let req_a = crate::ctx::RequestId::next();
        let req_b = crate::ctx::RequestId::next();
        // Two requests on two different OS threads (as under a
        // work-stealing pool), plus one record outside any scope.
        std::thread::scope(|s| {
            s.spawn(|| {
                let _scope = crate::ctx::RequestScope::enter(req_a);
                let _span = crate::span!(Level::Info, "job");
            });
            s.spawn(|| {
                let _scope = crate::ctx::RequestScope::enter(req_b);
                let _span = crate::span!(Level::Info, "job");
            });
        });
        crate::event!(Level::Info, "outside", msg = "no scope");
        disable();
        let doc = sink.to_json();
        let parsed = parse(&doc.to_string_pretty()).unwrap();
        let evs = parsed.get("traceEvents").unwrap().as_array().unwrap();
        // Each request's B/E pair sits on tid = request id under the
        // requests pid, tagged with its req.
        for req in [req_a, req_b] {
            let mine: Vec<_> = evs
                .iter()
                .filter(|e| {
                    e.get("ph").unwrap().as_str() != Some("M")
                        && e.get("tid").unwrap().as_u64() == Some(req.as_u64())
                })
                .collect();
            assert_eq!(mine.len(), 2, "one B and one E for {req}");
            for e in mine {
                assert_eq!(e.get("pid").unwrap().as_u64(), Some(REQUESTS_PID));
                assert_eq!(e.get("req").unwrap().as_u64(), Some(req.as_u64()));
            }
        }
        // The out-of-scope event stays on a thread track with no req tag.
        let outside = evs
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("outside"))
            .unwrap();
        assert_eq!(outside.get("pid").unwrap().as_u64(), Some(SPANS_PID));
        assert!(outside.get("req").is_none());
        // Track metadata names both requests.
        let tracks: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert!(tracks.contains(&format!("request {}", req_a.as_u64()).as_str()));
    }

    #[test]
    fn convergence_trace_renders_counter_tracks() {
        let points = [
            ConvergencePoint {
                iter: 1,
                objective: 10.0,
                gap: f64::INFINITY,
                step: 1.0,
            },
            ConvergencePoint {
                iter: 2,
                objective: 8.0,
                gap: 0.5,
                step: 0.5,
            },
        ];
        let doc = convergence_trace("pgd", &points);
        let parsed = parse(&doc.to_string_pretty()).unwrap();
        let evs = parsed.get("traceEvents").unwrap().as_array().unwrap();
        let counters: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .collect();
        // Point 1 skips its non-finite gap: 3 + 2 counter samples.
        assert_eq!(counters.len(), 5);
        let gap = counters
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("pgd gap"))
            .unwrap();
        assert_eq!(gap.get("ts").unwrap().as_f64(), Some(2.0));
        assert_eq!(
            gap.get("args").unwrap().get("gap").unwrap().as_f64(),
            Some(0.5)
        );
        assert!(counters
            .iter()
            .all(|e| e.get("pid").unwrap().as_u64() == Some(CONVERGENCE_PID)));
    }

    #[test]
    fn merge_concatenates_events() {
        let a = schedule_trace_seconds(
            1,
            &[TraceSegment {
                task: 0,
                core: 0,
                start: 0.0,
                end: 1.0,
                freq: 1.0,
            }],
        );
        let b = schedule_trace_seconds(1, &[]);
        let merged = merge(&[a.clone(), b.clone()]);
        let na = a.get("traceEvents").unwrap().as_array().unwrap().len();
        let nb = b.get("traceEvents").unwrap().as_array().unwrap().len();
        assert_eq!(
            merged.get("traceEvents").unwrap().as_array().unwrap().len(),
            na + nb
        );
        // Junk input contributes nothing.
        assert_eq!(
            merge(&[Value::Num(3.0)])
                .get("traceEvents")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            0
        );
    }
}
