//! `esched-top` — a live one-screen health view of a running engine,
//! rendered from the exporter's JSONL metrics stream.
//!
//! The [`Exporter`](esched_obs::Exporter) appends one JSONL line per
//! sampling tick (counters/histograms as deltas, gauges as current
//! values). This bin tails that file, folds the series back into
//! cumulative state, and renders the health surface the online engine
//! publishes: SLO state, windowed replan quantiles, fallback/repair
//! rates, energy regret, and the cumulative replan-latency histogram.
//!
//! ```text
//! esched-top [--once] [--interval <secs>] [<metrics.jsonl>]
//! ```
//!
//! `--once` renders a single frame and exits (CI and smoke tests);
//! otherwise the screen refreshes every `--interval` seconds (default 2).

use esched_obs::json::{parse, Value};
use std::collections::BTreeMap;

/// Folded view of one metric across the JSONL series.
#[derive(Default, Clone)]
struct Fold {
    /// Sum of per-tick values — the cumulative total for counters and
    /// histogram scalars (which the exporter emits as deltas).
    sum: f64,
    /// Last-seen value — the current reading for gauges.
    last: f64,
    /// Cumulative histogram buckets, keyed by `le` upper edge.
    buckets: BTreeMap<u64, f64>,
}

#[derive(Default)]
struct Frame {
    seq: f64,
    elapsed_s: f64,
    lines: usize,
    metrics: BTreeMap<String, Fold>,
}

fn fold_file(path: &str) -> Result<Frame, String> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| format!("esched-top: cannot read {path}: {e}"))?;
    let mut frame = Frame::default();
    for line in raw.lines() {
        let Ok(v) = parse(line) else {
            continue; // torn tail line mid-write: skip, next frame gets it
        };
        frame.lines += 1;
        frame.seq = v.get("seq").and_then(Value::as_f64).unwrap_or(frame.seq);
        frame.elapsed_s = v
            .get("elapsed_s")
            .and_then(Value::as_f64)
            .unwrap_or(frame.elapsed_s);
        let Some(Value::Obj(pairs)) = v.get("metrics") else {
            continue;
        };
        for (name, val) in pairs {
            let fold = frame.metrics.entry(name.clone()).or_default();
            match val {
                Value::Num(n) => {
                    fold.sum += n;
                    fold.last = *n;
                }
                Value::Obj(fields) => {
                    for (k, fv) in fields {
                        let Some(n) = fv.as_f64() else { continue };
                        if k == "count" {
                            fold.sum += n;
                        } else if let Some(le) = k.strip_prefix("le_") {
                            if let Ok(le) = le.parse::<u64>() {
                                *fold.buckets.entry(le).or_default() += n;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    Ok(frame)
}

fn fmt_ns(ns: f64) -> String {
    if ns <= 0.0 {
        "-".to_string()
    } else if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn fmt_pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

impl Frame {
    fn gauge(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).map(|f| f.last)
    }

    fn total(&self, name: &str) -> f64 {
        self.metrics.get(name).map(|f| f.sum).unwrap_or(0.0)
    }

    fn render(&self) -> String {
        let mut out = String::new();
        let state = match self.gauge("esched.online.health_state") {
            Some(s) if s >= 1.0 => "DEGRADED",
            Some(_) => "HEALTHY",
            None => "UNKNOWN",
        };
        out.push_str(&format!(
            "esched-top · state {state} · tick {} · up {:.1}s · {} samples\n",
            self.seq, self.elapsed_s, self.lines
        ));
        out.push_str("─────────────────────────────────────────────────────\n");
        out.push_str(&format!(
            "replan window   p50 {:>10}  p99 {:>10}  p999 {:>10}\n",
            fmt_ns(self.gauge("esched.online.replan_p50_ns").unwrap_or(0.0)),
            fmt_ns(self.gauge("esched.online.replan_p99_ns").unwrap_or(0.0)),
            fmt_ns(self.gauge("esched.online.replan_p999_ns").unwrap_or(0.0)),
        ));
        out.push_str(&format!(
            "repair          fallback rate {:>6}   repair fraction {:>6}\n",
            fmt_pct(self.gauge("esched.online.fallback_rate").unwrap_or(0.0)),
            fmt_pct(self.gauge("esched.online.repair_fraction").unwrap_or(0.0)),
        ));
        let regret = self
            .gauge("esched.online.energy_regret")
            .map(|r| format!("{:+.3}%", r * 100.0))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "energy audit    regret {regret:>9}   audits {}   diverged {}   skipped {}\n",
            self.total("esched.online.audits"),
            self.total("esched.online.audit_divergences"),
            self.total("esched.online.audits_skipped"),
        ));
        out.push_str(&format!(
            "liveness        heartbeat age {:>10}   breaches {}   recoveries {}\n",
            fmt_ns(self.gauge("esched.online.heartbeat_age_ns").unwrap_or(0.0)),
            self.total("esched.online.health_breaches"),
            self.total("esched.online.health_recoveries"),
        ));
        out.push_str(&format!(
            "engine totals   events {}   replans (window) {}\n",
            self.total("esched.engine.online_events"),
            self.gauge("esched.online.window_replans").unwrap_or(0.0),
        ));
        if let Some(hist) = self.metrics.get("esched.engine.online_replan_ns") {
            if !hist.buckets.is_empty() {
                out.push_str("replan latency (cumulative)\n");
                let max = hist.buckets.values().cloned().fold(0.0f64, f64::max);
                for (&le, &c) in &hist.buckets {
                    if c <= 0.0 {
                        continue;
                    }
                    let width = ((c / max) * 40.0).ceil() as usize;
                    out.push_str(&format!(
                        "  ≤{:>9} {:>8} {}\n",
                        fmt_ns(le as f64),
                        c,
                        "█".repeat(width.max(1))
                    ));
                }
            }
        }
        out
    }
}

fn main() {
    let mut once = false;
    let mut interval = 2.0f64;
    let mut path = "metrics.jsonl".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--interval" => {
                interval = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("esched-top: --interval needs a number of seconds");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("usage: esched-top [--once] [--interval <secs>] [<metrics.jsonl>]");
                return;
            }
            other => path = other.to_string(),
        }
    }
    loop {
        match fold_file(&path) {
            Ok(frame) => {
                if once {
                    print!("{}", frame.render());
                    return;
                }
                // Clear screen + home, then the frame.
                print!("\x1b[2J\x1b[H{}", frame.render());
                use std::io::Write;
                let _ = std::io::stdout().flush();
            }
            Err(msg) => {
                eprintln!("{msg}");
                if once {
                    std::process::exit(2);
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval.max(0.1)));
    }
}
