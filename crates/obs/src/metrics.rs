//! Process-global metrics registry: lock-cheap counters, gauges, and
//! histograms with static registration and a stable [`snapshot`] API.
//!
//! Complements the [`crate::trace`] span layer: spans answer *where the
//! time went in this run*, metrics answer *how much work the process has
//! done so far* — allocation rounds, packing passes, solver iterations,
//! simulator event-loop steps. Instruments are registered once by name
//! and live for the process lifetime; updating one is a handful of
//! relaxed atomic operations, cheap enough to sit on the solver and
//! simulator hot paths unconditionally (the same argument as
//! `SolverTelemetry`: integer increments far below measurement noise).
//!
//! Names follow the `esched.<crate>.<quantity>[_<unit>]` convention
//! documented in DESIGN.md §Observability, e.g.
//! `esched.core.der_waterfill_capped` or `esched.opt.solve_wall_ns`.
//! Registration is keyed by name: the first call creates the instrument,
//! later calls return the same one. Re-registering a name as a different
//! instrument kind panics — that is a naming bug, not a runtime
//! condition.
//!
//! Hot call sites should use the [`crate::metric_counter!`],
//! [`crate::metric_gauge!`], and [`crate::metric_histogram!`] macros,
//! which cache the registry lookup in a per-call-site `OnceLock` so the
//! steady state is one atomic load plus the update itself — the registry
//! mutex is only touched the first time each call site runs.
//!
//! [`snapshot`] returns every instrument's current value ordered by name
//! (the registry is a `BTreeMap`, so the ordering is stable across runs);
//! [`Snapshot::delta_since`] subtracts an earlier snapshot to scope
//! counters and histograms to a region of interest (the benchmark harness
//! does this per entry), and [`reset`] zeroes all instruments for
//! callers that prefer absolute values.

use crate::json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of power-of-two histogram buckets: bucket `k` counts samples in
/// `(2^(k-1), 2^k]` (bucket 0 holds `0` and `1`), enough for any `u64`.
const HIST_BUCKETS: usize = 64;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value (or high-water-mark) instrument holding one `f64`.
#[derive(Debug)]
pub struct Gauge {
    /// The value's IEEE-754 bits; `f64` has no atomic type, so the gauge
    /// stores `to_bits()` and CAS-loops where read-modify-write is needed.
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the value to `v` if `v` is larger (high-water mark).
    /// Non-finite `v` is ignored.
    #[inline]
    pub fn set_max(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// A log2-bucketed histogram of non-negative integer samples (iteration
/// counts, nanosecond durations) with total count and sum.
///
/// Buckets mirror [`crate::stats::Log2Histogram`] — `[0,1], (1,2], (2,4],
/// …` — but every cell is an atomic, so recording from many threads is
/// lock-free.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[Self::bucket(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration as whole nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    fn bucket(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            (64 - (value - 1).leading_zeros()) as usize
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps on overflow; callers recording
    /// nanoseconds would need ~585 years of measured time to wrap).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// The registry's view of one instrument.
enum Instrument {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, Instrument>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Instrument>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn help_registry() -> &'static Mutex<BTreeMap<String, String>> {
    static HELP: OnceLock<Mutex<BTreeMap<String, String>>> = OnceLock::new();
    HELP.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Attach a human-readable `# HELP` description to the metric named
/// `name`. Idempotent (the first description wins); safe to call before
/// or after the instrument itself is registered. The Prometheus
/// exposition renders it as a `# HELP` line.
pub fn describe(name: &str, help: &str) {
    let mut reg = help_registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.entry(name.to_string())
        .or_insert_with(|| help.to_string());
}

/// The registered `# HELP` text for `name`, if any.
pub fn help_text(name: &str) -> Option<String> {
    help_registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(name)
        .cloned()
}

/// Lock the registry, recovering from poisoning: the map is structurally
/// consistent at every point a holder can panic (the kind-mismatch panic
/// fires after the entry lookup completes), so the poison flag carries no
/// information here.
fn lock_registry() -> std::sync::MutexGuard<'static, BTreeMap<String, Instrument>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Get or create the counter named `name`.
///
/// # Panics
/// If `name` is already registered as a different instrument kind.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = lock_registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Instrument::Counter(Box::leak(Box::new(Counter::default()))))
    {
        Instrument::Counter(c) => c,
        other => panic!("metric {name:?} already registered as a {}", other.kind()),
    }
}

/// Get or create the gauge named `name`.
///
/// # Panics
/// If `name` is already registered as a different instrument kind.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut reg = lock_registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Instrument::Gauge(Box::leak(Box::new(Gauge::default()))))
    {
        Instrument::Gauge(g) => g,
        other => panic!("metric {name:?} already registered as a {}", other.kind()),
    }
}

/// Get or create the histogram named `name`.
///
/// # Panics
/// If `name` is already registered as a different instrument kind.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut reg = lock_registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Instrument::Histogram(Box::leak(Box::new(Histogram::default()))))
    {
        Instrument::Histogram(h) => h,
        other => panic!("metric {name:?} already registered as a {}", other.kind()),
    }
}

/// Counter with the registry lookup cached at the call site: after the
/// first execution, the cost is one atomic load plus the update.
#[macro_export]
macro_rules! metric_counter {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Gauge with the registry lookup cached at the call site.
#[macro_export]
macro_rules! metric_gauge {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// Histogram with the registry lookup cached at the call site.
#[macro_export]
macro_rules! metric_histogram {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

/// One instrument's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state: sample count, sample sum, and per-bucket counts
    /// (`buckets[k]` has upper edge `2^k`; trailing zero buckets trimmed).
    Histogram {
        /// Samples recorded.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Count per log2 bucket.
        buckets: Vec<u64>,
    },
}

impl Metric {
    /// JSON form. Counters and gauges are bare numbers; histograms are
    /// `{count, sum, mean, le_*...}` objects matching
    /// [`crate::stats::Log2Histogram::to_json`]'s bucket naming.
    pub fn to_json(&self) -> Value {
        match self {
            Metric::Counter(v) => Value::Num(*v as f64),
            Metric::Gauge(v) => Value::Num(*v),
            Metric::Histogram {
                count,
                sum,
                buckets,
            } => {
                let mean = if *count > 0 {
                    *sum as f64 / *count as f64
                } else {
                    0.0
                };
                let mut pairs = vec![
                    ("count".to_string(), Value::Num(*count as f64)),
                    ("sum".to_string(), Value::Num(*sum as f64)),
                    ("mean".to_string(), Value::Num(mean)),
                ];
                for (k, &c) in buckets.iter().enumerate() {
                    if c > 0 {
                        pairs.push((format!("le_{}", 1u64 << k), Value::Num(c as f64)));
                    }
                }
                Value::Obj(pairs)
            }
        }
    }
}

/// A point-in-time copy of every registered instrument, ordered by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` pairs in ascending name order.
    pub entries: Vec<(String, Metric)>,
}

impl Snapshot {
    /// Look up one instrument by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    /// Counter value by name (`None` for absent or non-counter entries).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            Metric::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The change since `earlier`: counters and histograms subtract
    /// (saturating, in case of an interleaved [`reset`]); gauges keep
    /// their current value. Entries absent from `earlier` pass through
    /// unchanged; entries only in `earlier` are dropped.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, m)| {
                let d = match (m, earlier.get(name)) {
                    (Metric::Counter(now), Some(Metric::Counter(then))) => {
                        Metric::Counter(now.saturating_sub(*then))
                    }
                    (
                        Metric::Histogram {
                            count,
                            sum,
                            buckets,
                        },
                        Some(Metric::Histogram {
                            count: c0,
                            sum: s0,
                            buckets: b0,
                        }),
                    ) => Metric::Histogram {
                        count: count.saturating_sub(*c0),
                        sum: sum.saturating_sub(*s0),
                        buckets: buckets
                            .iter()
                            .enumerate()
                            .map(|(k, &b)| b.saturating_sub(b0.get(k).copied().unwrap_or(0)))
                            .collect(),
                    },
                    _ => m.clone(),
                };
                (name.clone(), d)
            })
            .collect();
        Snapshot { entries }
    }

    /// JSON object keyed by metric name, in snapshot (= name) order.
    pub fn to_json(&self) -> Value {
        Value::Obj(
            self.entries
                .iter()
                .map(|(n, m)| (n.clone(), m.to_json()))
                .collect(),
        )
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Copy every registered instrument's current value, ordered by name.
/// The copy is per-instrument atomic, not globally atomic: concurrent
/// updates may land between reading two instruments, which is fine for
/// the reporting this feeds.
pub fn snapshot() -> Snapshot {
    let reg = lock_registry();
    let entries = reg
        .iter()
        .map(|(name, inst)| {
            let m = match inst {
                Instrument::Counter(c) => Metric::Counter(c.get()),
                Instrument::Gauge(g) => Metric::Gauge(g.get()),
                Instrument::Histogram(h) => {
                    let mut buckets = h.bucket_counts();
                    while buckets.last() == Some(&0) {
                        buckets.pop();
                    }
                    Metric::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets,
                    }
                }
            };
            (name.clone(), m)
        })
        .collect();
    Snapshot { entries }
}

/// Zero every registered instrument. Intended for harnesses that measure
/// a region in isolation (the benchmark runner calls this before each
/// entry); concurrent updaters keep working, their increments simply land
/// in the fresh epoch.
pub fn reset() {
    let reg = lock_registry();
    for inst in reg.values() {
        match inst {
            Instrument::Counter(c) => c.reset(),
            Instrument::Gauge(g) => g.reset(),
            Instrument::Histogram(h) => h.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and other tests in this crate touch
    // it too; every name used here is unique to its test so the tests
    // stay order- and concurrency-independent.

    #[test]
    fn counter_basics_and_identity() {
        let c = counter("esched.test.counter_basics");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same instrument.
        assert_eq!(counter("esched.test.counter_basics").get(), 5);
    }

    #[test]
    fn gauge_set_and_high_water() {
        let g = gauge("esched.test.gauge_basics");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set_max(1.0);
        assert_eq!(g.get(), 2.5);
        g.set_max(7.25);
        assert_eq!(g.get(), 7.25);
        g.set_max(f64::NAN);
        assert_eq!(g.get(), 7.25);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = histogram("esched.test.hist_basics");
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        let snap = snapshot();
        let Some(Metric::Histogram { count, buckets, .. }) = snap.get("esched.test.hist_basics")
        else {
            panic!("histogram missing from snapshot");
        };
        assert_eq!(*count, 5);
        // 0,1 → bucket 0; 2 → bucket 1; 3 → bucket 2; 1000 → bucket 10.
        assert_eq!(buckets[0], 2);
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[2], 1);
        assert_eq!(buckets[10], 1);
    }

    #[test]
    fn concurrent_increments_lose_nothing_and_snapshot_order_is_stable() {
        // 8 threads × 10_000 increments against one counter and one
        // histogram, racing registration through the macros on the same
        // call sites, must account for every update.
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    for k in 0..PER_THREAD {
                        metric_counter!("esched.test.stress_counter").inc();
                        metric_histogram!("esched.test.stress_hist").record(k % 7);
                        metric_gauge!("esched.test.stress_gauge")
                            .set_max((t as u64 * PER_THREAD + k) as f64);
                    }
                });
            }
        });
        let total = THREADS as u64 * PER_THREAD;
        assert_eq!(counter("esched.test.stress_counter").get(), total);
        assert_eq!(histogram("esched.test.stress_hist").count(), total);
        assert_eq!(gauge("esched.test.stress_gauge").get(), (total - 1) as f64);
        // Snapshots taken before and after more writes keep the same
        // (name-sorted) entry order.
        let a = snapshot();
        counter("esched.test.stress_counter").inc();
        let b = snapshot();
        let names = |s: &Snapshot| s.entries.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
        assert_eq!(names(&a), names(&b));
        let mut sorted = names(&a);
        sorted.sort();
        assert_eq!(names(&a), sorted);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        counter("esched.test.kind_clash");
        gauge("esched.test.kind_clash");
    }

    #[test]
    fn snapshot_is_name_ordered_and_delta_subtracts() {
        counter("esched.test.delta_b").add(10);
        counter("esched.test.delta_a").add(3);
        let before = snapshot();
        // Ordering: strictly ascending names.
        for w in before.entries.windows(2) {
            assert!(w[0].0 < w[1].0, "snapshot out of order: {w:?}");
        }
        counter("esched.test.delta_a").add(2);
        let delta = snapshot().delta_since(&before);
        assert_eq!(delta.counter("esched.test.delta_a"), Some(2));
        assert_eq!(delta.counter("esched.test.delta_b"), Some(0));
    }

    #[test]
    fn macros_cache_and_update() {
        for _ in 0..3 {
            metric_counter!("esched.test.macro_counter").inc();
        }
        metric_gauge!("esched.test.macro_gauge").set(1.5);
        metric_histogram!("esched.test.macro_hist").record(7);
        let s = snapshot();
        assert_eq!(s.counter("esched.test.macro_counter"), Some(3));
        assert_eq!(s.get("esched.test.macro_gauge"), Some(&Metric::Gauge(1.5)));
    }

    #[test]
    fn json_shape() {
        counter("esched.test.json_counter").add(2);
        histogram("esched.test.json_hist").record(5);
        let j = snapshot().to_json();
        assert_eq!(j.get("esched.test.json_counter").unwrap().as_u64(), Some(2));
        let h = j.get("esched.test.json_hist").unwrap();
        assert!(h.get("count").is_some() && h.get("le_8").is_some());
    }
}
