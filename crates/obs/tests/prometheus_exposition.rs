//! Prometheus text-exposition conformance: a golden-file test over a
//! hand-built snapshot, a structural parse of the output under the text
//! format's rules, and the `Exporter::stop` tail-flush regression test
//! (the final partial interval must land as one last contiguous JSONL
//! line).

use esched_obs::export::{prometheus_exposition, Exporter, ExporterConfig};
use esched_obs::json::parse;
use esched_obs::metrics::{self, Metric, Snapshot};
use std::time::Duration;

fn golden_snapshot() -> Snapshot {
    metrics::describe("esched.golden.jobs", "Jobs executed by the golden pipeline");
    metrics::describe(
        "esched.golden.queue_depth",
        "Live queue depth (may be fractional\nacross workers)",
    );
    metrics::describe(
        "esched.golden.replan_ns",
        "Replan latency in nanoseconds; backslash \\ escapes intact",
    );
    Snapshot {
        entries: vec![
            ("esched.golden.jobs".to_string(), Metric::Counter(42)),
            ("esched.golden.queue_depth".to_string(), Metric::Gauge(2.5)),
            (
                "esched.golden.replan_ns".to_string(),
                Metric::Histogram {
                    count: 10,
                    sum: 31,
                    buckets: vec![1, 4, 3, 2],
                },
            ),
            // No describe() call for this one: no # HELP line.
            ("esched.golden.undocumented".to_string(), Metric::Counter(1)),
        ],
    }
}

#[test]
fn exposition_matches_golden_file() {
    let got = prometheus_exposition(&golden_snapshot());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/exposition.prom");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("update golden file");
        return;
    }
    let want = include_str!("golden/exposition.prom");
    assert_eq!(
        got, want,
        "exposition drifted from tests/golden/exposition.prom \
         (UPDATE_GOLDEN=1 to regenerate)"
    );
}

/// Structural validation under the Prometheus text-format rules:
/// comment lines are `# HELP <name> <docstring>` or `# TYPE <name>
/// <counter|gauge|histogram>`, sample lines are `<name>[{labels}]
/// <value>`, metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`, `# TYPE`
/// precedes its samples, histogram buckets are cumulative and end at
/// `+Inf == _count`.
#[test]
fn exposition_parses_under_text_format_rules() {
    let text = prometheus_exposition(&golden_snapshot());
    let name_ok = |n: &str| {
        !n.is_empty()
            && n.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && n.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let mut typed: Vec<(String, String)> = Vec::new();
    let mut bucket_last: Option<u64> = None;
    for line in text.lines() {
        assert!(!line.is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap();
            let name = parts.next().expect("comment missing metric name");
            let payload = parts.next().expect("comment missing payload");
            assert!(name_ok(name), "bad metric name {name:?}");
            match keyword {
                "HELP" => assert!(!payload.contains('\n'), "unescaped newline in HELP payload"),
                "TYPE" => {
                    assert!(
                        matches!(payload, "counter" | "gauge" | "histogram"),
                        "unknown TYPE {payload:?}"
                    );
                    typed.push((name.to_string(), payload.to_string()));
                }
                other => panic!("unknown comment keyword {other:?}"),
            }
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample missing value");
        let value: f64 = value.parse().expect("unparsable sample value");
        let (name, labels) = match series.split_once('{') {
            Some((n, l)) => (n, Some(l.strip_suffix('}').expect("unclosed label set"))),
            None => (series, None),
        };
        assert!(name_ok(name), "bad metric name {name:?}");
        let (base, kind) = typed
            .iter()
            .find(|(t, _)| {
                name == t
                    || name == format!("{t}_bucket")
                    || name == format!("{t}_sum")
                    || name == format!("{t}_count")
            })
            .unwrap_or_else(|| panic!("sample {name} has no preceding # TYPE"));
        if kind == "histogram" && name == format!("{base}_bucket") {
            let labels = labels.expect("_bucket without le label");
            let le = labels
                .strip_prefix("le=\"")
                .and_then(|l| l.strip_suffix('"'))
                .expect("bucket label must be le=\"…\"");
            let cumulative = value as u64;
            if let Some(prev) = bucket_last {
                assert!(cumulative >= prev, "bucket series not cumulative");
            }
            bucket_last = Some(cumulative);
            if le == "+Inf" {
                bucket_last = None;
            } else {
                le.parse::<f64>().expect("non-numeric le");
            }
        } else {
            assert!(labels.is_none(), "unexpected labels on {name}");
        }
    }
    assert!(
        bucket_last.is_none(),
        "bucket series missing +Inf terminator"
    );
    assert_eq!(typed.len(), 4, "all four metrics typed");
}

#[test]
fn histogram_count_equals_inf_bucket() {
    let text = prometheus_exposition(&golden_snapshot());
    let inf: f64 = text
        .lines()
        .find(|l| l.contains("le=\"+Inf\""))
        .and_then(|l| l.rsplit_once(' '))
        .map(|(_, v)| v.parse().unwrap())
        .expect("+Inf bucket present");
    let count: f64 = text
        .lines()
        .find(|l| l.starts_with("esched_golden_replan_ns_count"))
        .and_then(|l| l.rsplit_once(' '))
        .map(|(_, v)| v.parse().unwrap())
        .expect("_count present");
    assert_eq!(inf, count);
}

/// `Exporter::stop` regression: work recorded *after* the last periodic
/// tick must still land — stop takes one final sample — and the JSONL
/// `seq` numbering stays contiguous across the shutdown edge.
#[test]
fn exporter_stop_flushes_the_tail_sample() {
    let dir = std::env::temp_dir().join(format!("esched-export-stop-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Interval far longer than the test: no periodic tick ever fires, so
    // the only line carrying the counter is the stop-time tail sample.
    let cfg = ExporterConfig {
        interval: Duration::from_secs(3600),
        jsonl_path: dir.join("metrics.jsonl"),
        prom_path: Some(dir.join("metrics.prom")),
    };
    let exporter = Exporter::start(cfg).expect("exporter start");
    metrics::counter("esched.test.stop_tail_counter").add(7);
    let lines_written = exporter.stop().expect("exporter stop");
    assert!(lines_written >= 1, "stop wrote no final sample");

    let raw = std::fs::read_to_string(dir.join("metrics.jsonl")).expect("read jsonl");
    let lines: Vec<&str> = raw.lines().collect();
    assert_eq!(lines.len() as u64, lines_written, "seq vs line count");
    // The series encodes counters as per-tick deltas: the increment must
    // be recoverable by folding the whole file, including the stop-time
    // tail line — a dropped tail loses it.
    let mut seen = false;
    let mut folded = 0.0;
    for (i, line) in lines.iter().enumerate() {
        let v = parse(line).expect("jsonl line parses");
        let seq = v.get("seq").and_then(|s| s.as_f64()).expect("seq field");
        assert_eq!(seq as usize, i, "seq must be contiguous from 0");
        if let Some(metrics) = v.get("metrics") {
            if let Some(c) = metrics.get("esched.test.stop_tail_counter") {
                seen = true;
                folded += c.as_f64().expect("counter delta is a number");
            }
        }
    }
    assert!(seen, "tail sample dropped: counter never exported");
    assert_eq!(folded as u64, 7);
    let prom = std::fs::read_to_string(dir.join("metrics.prom")).expect("prom written");
    assert!(
        prom.contains("esched_test_stop_tail_counter 7"),
        "final exposition missing tail counter:\n{prom}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
