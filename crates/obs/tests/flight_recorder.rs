//! Flight-recorder stress tests: wraparound under heavy multi-writer
//! load with a reader draining mid-flight, and the post-mortem dump path.
//!
//! The ring is process-global, so every assertion filters on the names
//! this file records — other tests in the binary can run concurrently.

use esched_obs::recorder::{self, FlightKind, FlightRecord};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

const WRITERS: usize = 8;
const RECORDS_PER_WRITER: u64 = 100_000;

/// The enabled flag and the ring are process-global, so the tests in
/// this binary must not overlap (one toggling `set_enabled` would drop
/// another's writes).
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn stress_records(snap: &[FlightRecord]) -> Vec<&FlightRecord> {
    snap.iter().filter(|r| r.name == "fr_stress").collect()
}

/// 8 writers × 100k records each, with a reader snapshotting throughout.
/// Every observed record must be whole (its payload internally
/// consistent), epochs must be strictly increasing within a snapshot, and
/// the snapshot size must never exceed the ring capacity.
#[test]
fn concurrent_writers_with_mid_flight_reader() {
    let _guard = serialize();
    recorder::set_enabled(true);
    let name = recorder::name_id("fr_stress");
    let done = Arc::new(AtomicBool::new(false));

    let reader_done = Arc::clone(&done);
    let reader = std::thread::spawn(move || {
        let mut drains = 0u64;
        while !reader_done.load(Ordering::Relaxed) {
            let snap = recorder::snapshot();
            assert!(
                snap.len() <= recorder::capacity(),
                "snapshot exceeds ring capacity: {}",
                snap.len()
            );
            let mut prev_epoch = 0u64;
            for r in stress_records(&snap) {
                // Writer w encodes (w+1) as the request and stamps the
                // value with the same writer id in the high bits — a torn
                // read (payload from two different writes) breaks the
                // pairing.
                let writer = r.request;
                assert!(
                    (1..=WRITERS as u64).contains(&writer),
                    "corrupt request field {writer}"
                );
                assert_eq!(
                    r.value >> 32,
                    writer,
                    "torn record: writer tag {} under request {writer}",
                    r.value >> 32
                );
                assert!((r.value & 0xFFFF_FFFF) < RECORDS_PER_WRITER);
                assert_eq!(r.kind, FlightKind::Counter);
                assert!(
                    r.epoch > prev_epoch,
                    "epochs not strictly increasing: {} after {}",
                    r.epoch,
                    prev_epoch
                );
                prev_epoch = r.epoch;
            }
            drains += 1;
        }
        drains
    });

    std::thread::scope(|scope| {
        for w in 0..WRITERS as u64 {
            scope.spawn(move || {
                for k in 0..RECORDS_PER_WRITER {
                    recorder::record_for(FlightKind::Counter, name, w + 1, ((w + 1) << 32) | k);
                }
            });
        }
    });
    done.store(true, Ordering::Relaxed);
    let drains = reader.join().expect("reader panicked");
    assert!(drains > 0, "reader never ran");

    // After the dust settles: the ring wrapped many times (800k writes
    // into a much smaller ring) yet stays bounded, and the survivors are
    // all from the newest epochs.
    let snap = recorder::snapshot();
    assert!(snap.len() <= recorder::capacity());
    let survivors = stress_records(&snap);
    assert!(
        !survivors.is_empty(),
        "no stress records survived in the ring"
    );
    let total = WRITERS as u64 * RECORDS_PER_WRITER;
    assert!(
        (survivors.len() as u64) < total,
        "ring never wrapped — capacity check is vacuous"
    );
}

/// Wraparound on a single shard: a single thread writing far more
/// records than one shard holds keeps only the newest ones.
#[test]
fn single_writer_wraparound_keeps_newest() {
    let _guard = serialize();
    recorder::set_enabled(true);
    let name = recorder::name_id("fr_wrap");
    let writes = 4 * recorder::capacity() as u64;
    for k in 0..writes {
        recorder::record_for(FlightKind::Event, name, 0, k);
    }
    let snap = recorder::snapshot();
    let mine: Vec<u64> = snap
        .iter()
        .filter(|r| r.name == "fr_wrap")
        .map(|r| r.value)
        .collect();
    assert!(!mine.is_empty());
    assert!(mine.len() <= recorder::capacity());
    // This thread writes a single shard round-robin, so the shard holds
    // exactly the newest SLOTS_PER_SHARD values, in epoch order.
    let lo = *mine.first().unwrap();
    assert_eq!(mine.last(), Some(&(writes - 1)), "newest record missing");
    assert_eq!(
        mine.len() as u64,
        writes - lo,
        "gap in the surviving suffix"
    );
}

/// Disabling the recorder makes writes invisible (and free).
#[test]
fn disabled_recorder_drops_writes() {
    let _guard = serialize();
    let name = recorder::name_id("fr_disabled");
    recorder::set_enabled(false);
    recorder::record_for(FlightKind::Event, name, 0, 1);
    recorder::set_enabled(true);
    let snap = recorder::snapshot();
    assert!(
        !snap.iter().any(|r| r.name == "fr_disabled"),
        "disabled write leaked into the ring"
    );
}
