//! Windowed quantile-sketch battery: randomized streams cross-checked
//! against exact sorted quantiles (rank-error bound), a window-rotation
//! expiry proof, and an 8-writer concurrent stress test in the style of
//! `flight_recorder.rs`.
//!
//! The sketch's accuracy contract: the log-linear layout (16 linear
//! sub-buckets per power-of-two octave) puts the nearest-rank value and
//! the reported bucket midpoint in the *same* bucket, so every quantile
//! estimate is within one sub-bucket width — a relative error of at most
//! `1/16 = 6.25%` for values ≥ 16 (exact below 16).

use esched_obs::health::{WindowedCounter, WindowedSketch};
use esched_obs::rng::ChaCha8;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Relative rank-error bound guaranteed by the bucket layout, padded for
/// the midpoint-vs-edge placement within the shared bucket.
const REL_ERR: f64 = 1.0 / 16.0;

/// Exact nearest-rank quantile of a sorted slice (the definition the
/// sketch's `quantile` mirrors bucket-wise).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The estimate must land within one sub-bucket of the exact value:
/// `|est - exact| <= exact / 16` (plus the integer-midpoint slack of 1
/// for tiny values).
fn assert_within_bound(est: u64, exact: u64, q: f64, dist: &str) {
    let tol = (exact as f64 * REL_ERR).max(1.0);
    assert!(
        (est as f64 - exact as f64).abs() <= tol,
        "{dist}: q={q}: estimate {est} vs exact {exact} (tol {tol:.1})"
    );
}

#[test]
fn randomized_streams_match_exact_quantiles() {
    const N: usize = 20_000;
    let quantiles = [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999];
    // Three shapes: uniform, heavy-tailed (squared uniform), and
    // bimodal — the shapes replan latency actually takes.
    for (seed, dist) in [(1u64, "uniform"), (2, "heavy_tail"), (3, "bimodal")] {
        let mut rng = ChaCha8::seed_from_u64(0x5EED_0000 + seed);
        let sketch = WindowedSketch::new(Duration::from_secs(60), 6);
        let t = 30_000_000_000u64; // mid-window, fixed: accuracy test only
        let mut values = Vec::with_capacity(N);
        for k in 0..N {
            let u = rng.next_u64() % 1_000_000;
            let v = match dist {
                "uniform" => u + 1,
                "heavy_tail" => (u * u) / 1_000_000 + 1,
                _ => {
                    if k % 10 == 0 {
                        800_000 + u % 200_000
                    } else {
                        1_000 + u % 500
                    }
                }
            };
            values.push(v);
            sketch.record_at(t, v);
        }
        values.sort_unstable();
        let merged = sketch.merged_at(t);
        assert_eq!(merged.count(), N as u64);
        assert_eq!(merged.sum(), values.iter().sum::<u64>());
        for q in quantiles {
            let est = merged.quantile(q).expect("non-empty sketch");
            assert_within_bound(est, exact_quantile(&values, q), q, dist);
        }
    }
}

#[test]
fn empty_sketch_has_no_quantiles() {
    let sketch = WindowedSketch::new(Duration::from_secs(10), 8);
    let m = sketch.merged_at(5_000_000_000);
    assert_eq!(m.count(), 0);
    assert_eq!(m.quantile(0.5), None);
    assert_eq!(m.mean(), 0.0);
}

/// Expiry proof: walk a long stream of sub-window ticks and check, at
/// every step, that the merged window contains exactly the samples from
/// the last `window` — never fewer, never stale ones — by tagging each
/// sub-window's samples with a distinct value.
#[test]
fn rotation_expires_exactly_the_window() {
    let sub = Duration::from_secs(1);
    let subs = 8usize;
    let sketch = WindowedSketch::new(Duration::from_secs(8), subs);
    let sub_ns = sketch.sub_window_ns();
    assert_eq!(sub_ns, sub.as_nanos() as u64);

    // Tick k writes exactly k+1 samples at time k·sub (sub-window k).
    for k in 0u64..64 {
        let t = k * sub_ns;
        for _ in 0..=k {
            sketch.record_at(t, 100 + k);
        }
        let merged = sketch.merged_at(t);
        // Live range at t: sub-windows max(0, k-subs)..=k (ring capacity
        // is subs+1, so the merge may span one extra sub-window beyond
        // the nominal window — "at least the window" is the contract).
        let oldest = k.saturating_sub(subs as u64);
        let want: u64 = (oldest..=k).map(|j| j + 1).sum();
        assert_eq!(
            merged.count(),
            want,
            "tick {k}: merged window holds the wrong sample set"
        );
        // No stale tag survives: the minimum observed value must come
        // from the oldest live sub-window. The quantile reports a bucket
        // midpoint, so allow one sub-bucket width (4 at these
        // magnitudes) of quantization slack.
        if let Some(p0) = merged.quantile(0.0) {
            assert!(
                p0 + 4 >= 100 + oldest,
                "tick {k}: stale sample {p0} survived rotation"
            );
        }
    }
    // Jump far ahead: everything expires.
    assert_eq!(sketch.merged_at(1_000 * sub_ns).count(), 0);
}

#[test]
fn counter_rotation_expires_exactly_the_window() {
    let c = WindowedCounter::new(Duration::from_secs(8), 8);
    let sub_ns = 1_000_000_000u64;
    for k in 0u64..64 {
        c.add_at(k * sub_ns, 1);
        let oldest = k.saturating_sub(8);
        assert_eq!(c.sum_at(k * sub_ns), k - oldest + 1, "tick {k}");
    }
    assert_eq!(c.sum_at(1_000 * sub_ns), 0);
}

/// 8 writers hammering one sketch while a reader merges mid-flight, with
/// the clock advancing across sub-window rotations throughout. Merged
/// views must never tear: the count can lag writers mid-stream, but
/// every merge must be internally consistent (count equals the bucket
/// total — `MergedWindow` computes count *from* buckets, so the final
/// settled view proves no increment was lost or double-merged).
#[test]
fn concurrent_writers_with_mid_flight_reader() {
    const WRITERS: usize = 8;
    const RECORDS_PER_WRITER: u64 = 100_000;
    let sketch = Arc::new(WindowedSketch::new(Duration::from_secs(3600), 4));
    let sub_ns = sketch.sub_window_ns();
    let done = Arc::new(AtomicBool::new(false));

    // Writers spread records across the first two sub-windows of the
    // hour-long window; every sample stays live at read time t_end.
    let t_end = sub_ns + sub_ns / 2;
    let reader_sketch = Arc::clone(&sketch);
    let reader_done = Arc::clone(&done);
    let reader = std::thread::spawn(move || {
        let mut merges = 0u64;
        let mut last_count = 0u64;
        while !reader_done.load(Ordering::Relaxed) {
            let m = reader_sketch.merged_at(t_end);
            let total = WRITERS as u64 * RECORDS_PER_WRITER;
            assert!(
                m.count() <= total,
                "merged count {} exceeds records written {total}",
                m.count()
            );
            // Within one sub-window (no rotation can drop these samples),
            // the visible count is monotone across merges.
            assert!(
                m.count() >= last_count,
                "merged count went backwards: {} after {last_count}",
                m.count()
            );
            last_count = m.count();
            merges += 1;
        }
        merges
    });

    std::thread::scope(|scope| {
        for w in 0..WRITERS as u64 {
            let sketch = Arc::clone(&sketch);
            scope.spawn(move || {
                for k in 0..RECORDS_PER_WRITER {
                    // Alternate sub-windows 0 and 1; value tags the writer.
                    let t = (k % 2) * sub_ns;
                    sketch.record_at(t, (w + 1) * 1_000 + (k % 7));
                }
            });
        }
    });
    done.store(true, Ordering::Relaxed);
    let merges = reader.join().expect("reader panicked");
    assert!(merges > 0, "reader never ran");

    // Settled view: nothing lost, nothing duplicated.
    let m = sketch.merged_at(t_end);
    assert_eq!(m.count(), WRITERS as u64 * RECORDS_PER_WRITER);
    let p0 = m.quantile(0.0).unwrap();
    let p100 = m.quantile(1.0).unwrap();
    assert!((900..=1_200).contains(&p0), "min tag out of range: {p0}");
    assert!(
        (7_500..=8_500).contains(&p100),
        "max tag out of range: {p100}"
    );
}

/// Writers racing *across* a rotation boundary: half the records go to a
/// sub-window the ring is about to lap. The merge must only ever see
/// whole sub-windows — a torn view would break count-vs-bucket agreement
/// inside `MergedWindow` (checked internally) or resurrect expired data.
#[test]
fn concurrent_rotation_stress_never_resurrects_expired_data() {
    const WRITERS: usize = 8;
    const TICKS: u64 = 2_000;
    let sketch = Arc::new(WindowedSketch::new(Duration::from_secs(4), 4));
    let sub_ns = sketch.sub_window_ns();

    std::thread::scope(|scope| {
        for w in 0..WRITERS as u64 {
            let sketch = Arc::clone(&sketch);
            scope.spawn(move || {
                for k in 0..TICKS {
                    // Every writer walks the same clock; the ring rotates
                    // TICKS times under concurrent load.
                    sketch.record_at(k * sub_ns, 10 + w);
                }
            });
        }
        let sketch = Arc::clone(&sketch);
        scope.spawn(move || {
            for k in 0..TICKS {
                let m = sketch.merged_at(k * sub_ns);
                // At most WRITERS records per sub-window per tick, over at
                // most 5 live sub-windows (ring capacity).
                assert!(
                    m.count() <= WRITERS as u64 * 5 * 2,
                    "tick {k}: impossible merged count {}",
                    m.count()
                );
            }
        });
    });

    // After the dust settles the final window holds at most the last
    // 5 sub-windows' worth of records.
    let m = sketch.merged_at((TICKS - 1) * sub_ns);
    assert!(m.count() >= WRITERS as u64, "newest tick lost");
    assert!(
        m.count() <= WRITERS as u64 * 5 * 2,
        "expired sub-windows resurrected: {}",
        m.count()
    );
}
