//! Property tests for the optimization substrate.

use esched_opt::{
    feasible_at_frequency, lmo_capped_simplex, min_frequency_by_flow, project_capped_simplex,
    solve_pgd, EnergyProgram, SolveOptions,
};
use esched_subinterval::Timeline;
use esched_types::{PolynomialPower, Task, TaskSet};
use proptest::prelude::*;

fn arb_task_set(max_tasks: usize) -> impl Strategy<Value = TaskSet> {
    prop::collection::vec((0.0_f64..30.0, 0.5_f64..25.0, 0.05_f64..1.2), 1..=max_tasks)
        .prop_map(|v| {
            TaskSet::new(
                v.into_iter()
                    .map(|(r, len, intensity)| Task::of(r, r + len, (len * intensity).max(1e-3)))
                    .collect(),
            )
            .unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn projection_is_idempotent(
        z in prop::collection::vec(-3.0_f64..5.0, 1..12),
        cap_frac in 0.05_f64..1.2,
    ) {
        let u = vec![1.0; z.len()];
        let cap = cap_frac * z.len() as f64 * 0.5;
        let mut p1 = vec![0.0; z.len()];
        project_capped_simplex(&z, &u, cap, &mut p1);
        let mut p2 = vec![0.0; z.len()];
        project_capped_simplex(&p1, &u, cap, &mut p2);
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!((a - b).abs() < 1e-7, "projection not idempotent: {a} vs {b}");
        }
    }

    #[test]
    fn projection_is_nonexpansive(
        z1 in prop::collection::vec(-3.0_f64..5.0, 4..10),
        shift in prop::collection::vec(-1.0_f64..1.0, 10),
        cap_frac in 0.05_f64..1.2,
    ) {
        let n = z1.len();
        let z2: Vec<f64> = z1.iter().zip(&shift).map(|(a, b)| a + b).collect();
        let u = vec![1.0; n];
        let cap = cap_frac * n as f64 * 0.5;
        let mut p1 = vec![0.0; n];
        let mut p2 = vec![0.0; n];
        project_capped_simplex(&z1, &u, cap, &mut p1);
        project_capped_simplex(&z2, &u, cap, &mut p2);
        let dp: f64 = p1.iter().zip(&p2).map(|(a, b)| (a - b).powi(2)).sum::<f64>().sqrt();
        let dz: f64 = z1.iter().zip(&z2).map(|(a, b)| (a - b).powi(2)).sum::<f64>().sqrt();
        prop_assert!(dp <= dz + 1e-6, "expansive projection: {dp} > {dz}");
    }

    #[test]
    fn lmo_beats_random_feasible_points(
        g in prop::collection::vec(-2.0_f64..2.0, 2..10),
        mix in prop::collection::vec(0.0_f64..1.0, 10),
        cap_frac in 0.1_f64..1.0,
    ) {
        let n = g.len();
        let u = vec![1.0; n];
        let cap = cap_frac * n as f64 * 0.6;
        let mut s = vec![0.0; n];
        lmo_capped_simplex(&g, &u, cap, &mut s);
        let s_val: f64 = g.iter().zip(&s).map(|(a, b)| a * b).sum();
        // Candidate: scaled mix kept feasible.
        let mut y: Vec<f64> = mix[..n].to_vec();
        let ysum: f64 = y.iter().sum();
        if ysum > cap {
            for v in &mut y { *v *= cap / ysum; }
        }
        let y_val: f64 = g.iter().zip(&y).map(|(a, b)| a * b).sum();
        prop_assert!(s_val <= y_val + 1e-9, "LMO {s_val} beaten by {y_val}");
    }

    #[test]
    fn solver_respects_feasibility_and_certifies(
        tasks in arb_task_set(8),
        cores in 1_usize..4,
        p0 in 0.0_f64..0.3,
    ) {
        let tl = Timeline::build(&tasks);
        let ep = EnergyProgram::new(&tasks, &tl, cores, PolynomialPower::paper(3.0, p0));
        let r = solve_pgd(&ep, ep.initial_point(), &SolveOptions::fast());
        prop_assert!(ep.is_feasible(&r.x, 1e-6));
        prop_assert!(r.objective.is_finite() && r.objective > 0.0);
        prop_assert!(r.gap >= -1e-9);
        // The certified gap bounds suboptimality vs. the initial point.
        let f0 = ep.objective(&ep.initial_point());
        prop_assert!(r.objective <= f0 + 1e-9);
    }

    #[test]
    fn flow_minimum_frequency_is_consistent(
        tasks in arb_task_set(6),
        cores in 1_usize..4,
    ) {
        let tl = Timeline::build(&tasks);
        let f = min_frequency_by_flow(&tasks, &tl, cores, 1e-9);
        prop_assert!(f > 0.0 && f.is_finite());
        prop_assert!(feasible_at_frequency(&tasks, &tl, cores, f * (1.0 + 1e-6)));
        prop_assert!(!feasible_at_frequency(&tasks, &tl, cores, f * 0.95));
        // More cores never raise the minimum frequency.
        let f_more = min_frequency_by_flow(&tasks, &tl, cores + 1, 1e-9);
        prop_assert!(f_more <= f * (1.0 + 1e-6), "more cores raised f*: {f_more} > {f}");
    }

    #[test]
    fn energy_program_objective_is_convex_along_segments(
        tasks in arb_task_set(6),
        lambda in 0.0_f64..1.0,
    ) {
        // Convexity spot-check: f(λx + (1−λ)y) ≤ λf(x) + (1−λ)f(y) for the
        // initial point and a projected random-ish perturbation.
        let tl = Timeline::build(&tasks);
        let ep = EnergyProgram::new(&tasks, &tl, 2, PolynomialPower::paper(2.5, 0.1));
        let x = ep.initial_point();
        let z: Vec<f64> = x.iter().enumerate().map(|(k, &v)| v * (0.3 + (k % 3) as f64 * 0.35)).collect();
        let mut y = vec![0.0; ep.dim()];
        ep.project(&z, &mut y);
        let mid: Vec<f64> = x.iter().zip(&y).map(|(a, b)| lambda * a + (1.0 - lambda) * b).collect();
        let lhs = ep.objective(&mid);
        let rhs = lambda * ep.objective(&x) + (1.0 - lambda) * ep.objective(&y);
        prop_assert!(lhs <= rhs + 1e-7 * (1.0 + rhs.abs()), "convexity violated: {lhs} > {rhs}");
    }
}
