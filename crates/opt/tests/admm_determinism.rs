//! Determinism and warm-start contracts for the decomposed ADMM solver.
//!
//! The per-task subproblems fan out across the engine worker pool in
//! fixed chunks of the flat variable vector, and every reduction runs in
//! a fixed order on the coordinator thread — so the `SolveResult` must
//! be byte-identical at any worker count. These tests pin that contract
//! at 1, 4, and 8 workers on an instance large enough to actually take
//! the parallel path, and check that a warm start from the previous
//! primal/dual point strictly reduces the iteration count.

use esched_obs::pool::Pool;
use esched_opt::{kkt_report, EnergyProgram, SolveOptions, SolveResult, SolverKind};
use esched_subinterval::Timeline;
use esched_types::{PolynomialPower, TaskSet};

/// Deterministic pseudo-random task set. Releases are spread over a long
/// horizon so windows overlap only locally: the flat dimension stays
/// small even at task counts past the solver's serial-fallback threshold
/// (256 tasks), keeping the test fast in debug builds.
fn big_tasks(n: usize, seed: u64) -> TaskSet {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        // xorshift64*: plain integer arithmetic, identical on every run.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    };
    let horizon = 3.0 * n as f64;
    let mut triples = Vec::with_capacity(n);
    for _ in 0..n {
        let release = horizon * next();
        let span = 4.0 + 8.0 * next();
        let wcec = 0.5 + 4.0 * next();
        triples.push((release, release + span, wcec));
    }
    TaskSet::from_triples(&triples)
}

fn program(tasks: &TaskSet) -> EnergyProgram {
    let tl = Timeline::build(tasks);
    EnergyProgram::new(tasks, &tl, 4, PolynomialPower::paper(3.0, 0.1))
}

/// Strip the one nondeterministic field (wall-clock) so the rest of the
/// result can be compared bit-for-bit.
fn canonical(mut r: SolveResult) -> SolveResult {
    r.telemetry.wall_s = 0.0;
    r
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn byte_identical_across_1_4_8_workers() {
    let tasks = big_tasks(300, 7);
    let ep = program(&tasks);
    assert!(ep.task_count() >= 256, "must exercise the parallel path");
    let opts = SolveOptions::default();

    let results: Vec<SolveResult> = [1usize, 4, 8]
        .iter()
        .map(|&w| {
            canonical(esched_opt::solve_admm_in(
                &ep,
                &opts,
                &Pool::with_threads(w),
            ))
        })
        .collect();

    let base = &results[0];
    assert!(base.converged, "reference solve must converge");
    for (r, w) in results.iter().zip([1usize, 4, 8]) {
        assert_eq!(bits(&r.x), bits(&base.x), "{w} workers: primal differs");
        assert_eq!(
            r.dual.as_deref().map(bits),
            base.dual.as_deref().map(bits),
            "{w} workers: dual differs"
        );
        assert_eq!(
            r.objective.to_bits(),
            base.objective.to_bits(),
            "{w} workers: objective differs"
        );
        assert_eq!(
            r.gap.to_bits(),
            base.gap.to_bits(),
            "{w} workers: gap differs"
        );
        assert_eq!(r.iters, base.iters, "{w} workers: iteration count differs");
        assert_eq!(r.converged, base.converged);
        assert_eq!(r.telemetry.backtracks, base.telemetry.backtracks);
        assert_eq!(r.telemetry.stalls, base.telemetry.stalls);
    }
}

#[test]
fn warm_started_resolve_strictly_drops_iterations() {
    let tasks = big_tasks(300, 11);
    let ep = program(&tasks);
    let pool = Pool::with_threads(4);

    let cold = esched_opt::solve_admm_in(&ep, &SolveOptions::default(), &pool);
    assert!(cold.converged, "cold solve must converge");
    let duals = cold.dual.clone().expect("admm must return its dual point");

    let warm_opts = SolveOptions::default()
        .with_warm_start(cold.x.clone())
        .with_warm_start_dual(duals);
    let warm = esched_opt::solve_admm_in(&ep, &warm_opts, &pool);

    assert!(warm.converged, "warm solve must converge");
    assert!(
        warm.iters < cold.iters,
        "warm start must strictly drop iterations: warm {} vs cold {}",
        warm.iters,
        cold.iters
    );
    assert!(
        (warm.objective - cold.objective).abs() <= 1e-6 * (1.0 + cold.objective.abs()),
        "warm and cold optima must match: {} vs {}",
        warm.objective,
        cold.objective
    );
}

#[test]
fn admm_agrees_with_every_certifying_serial_solver() {
    let tasks = big_tasks(24, 23);
    let ep = program(&tasks);
    let admm = SolverKind::Admm.solve(&ep, &SolveOptions::default());
    let admm_kkt = kkt_report(&ep, &admm.x);
    assert!(
        admm_kkt.is_optimal(1e-5),
        "admm fails the independent KKT certificate: residual {:e}, gap {:e}",
        admm_kkt.projected_gradient_residual,
        admm_kkt.duality_gap
    );
    // Two certified points are provably within 2e-5 of each other in
    // objective; a serial solver that stops short of certification (e.g.
    // Frank-Wolfe's sublinear tail) only has to meet the loose band.
    let mut certified = 0usize;
    for kind in SolverKind::ALL {
        if kind == SolverKind::Admm {
            continue;
        }
        let r = kind.solve(&ep, &SolveOptions::precise());
        let scale = 1.0 + r.objective.abs();
        let diff = (admm.objective - r.objective).abs() / scale;
        assert!(
            diff <= 2e-3,
            "admm {} vs {} {}: relative diff {:e}",
            admm.objective,
            kind.name(),
            r.objective,
            diff
        );
        if kkt_report(&ep, &r.x).is_optimal(1e-5) {
            certified += 1;
            assert!(
                diff <= 2e-5,
                "admm {} vs certified {} {}: relative diff {:e}",
                admm.objective,
                kind.name(),
                r.objective,
                diff
            );
        }
    }
    assert!(
        certified >= 3,
        "agreement test lost its teeth: only {certified} serial solvers certified"
    );
}
