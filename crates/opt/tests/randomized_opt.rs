//! Seeded randomized tests for the optimization substrate.

use esched_obs::rng::ChaCha8;
use esched_opt::{
    feasible_at_frequency, lmo_capped_simplex, min_frequency_by_flow, project_capped_simplex,
    solve_pgd, EnergyProgram, SolveOptions,
};
use esched_subinterval::Timeline;
use esched_types::{PolynomialPower, Task, TaskSet};

const CASES: usize = 40;

fn arb_task_set(rng: &mut ChaCha8, max_tasks: usize) -> TaskSet {
    let n = rng.gen_range_usize(1, max_tasks + 1);
    TaskSet::new(
        (0..n)
            .map(|_| {
                let r = rng.gen_range_f64(0.0, 30.0);
                let len = rng.gen_range_f64(0.5, 25.0);
                let intensity = rng.gen_range_f64(0.05, 1.2);
                Task::of(r, r + len, (len * intensity).max(1e-3))
            })
            .collect(),
    )
    .unwrap()
}

fn arb_vec(rng: &mut ChaCha8, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let n = rng.gen_range_usize(min_len, max_len);
    (0..n).map(|_| rng.gen_range_f64(lo, hi)).collect()
}

#[test]
fn projection_is_idempotent() {
    let mut rng = ChaCha8::seed_from_u64(0x0b70_0001);
    for _ in 0..CASES {
        let z = arb_vec(&mut rng, -3.0, 5.0, 1, 12);
        let cap_frac = rng.gen_range_f64(0.05, 1.2);
        let u = vec![1.0; z.len()];
        let cap = cap_frac * z.len() as f64 * 0.5;
        let mut p1 = vec![0.0; z.len()];
        project_capped_simplex(&z, &u, cap, &mut p1);
        let mut p2 = vec![0.0; z.len()];
        project_capped_simplex(&p1, &u, cap, &mut p2);
        for (a, b) in p1.iter().zip(&p2) {
            assert!(
                (a - b).abs() < 1e-7,
                "projection not idempotent: {a} vs {b}"
            );
        }
    }
}

#[test]
fn projection_is_nonexpansive() {
    let mut rng = ChaCha8::seed_from_u64(0x0b70_0002);
    for _ in 0..CASES {
        let z1 = arb_vec(&mut rng, -3.0, 5.0, 4, 10);
        let n = z1.len();
        let z2: Vec<f64> = z1
            .iter()
            .map(|a| a + rng.gen_range_f64(-1.0, 1.0))
            .collect();
        let cap_frac = rng.gen_range_f64(0.05, 1.2);
        let u = vec![1.0; n];
        let cap = cap_frac * n as f64 * 0.5;
        let mut p1 = vec![0.0; n];
        let mut p2 = vec![0.0; n];
        project_capped_simplex(&z1, &u, cap, &mut p1);
        project_capped_simplex(&z2, &u, cap, &mut p2);
        let dp: f64 = p1
            .iter()
            .zip(&p2)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        let dz: f64 = z1
            .iter()
            .zip(&z2)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(dp <= dz + 1e-6, "expansive projection: {dp} > {dz}");
    }
}

#[test]
fn lmo_beats_random_feasible_points() {
    let mut rng = ChaCha8::seed_from_u64(0x0b70_0003);
    for _ in 0..CASES {
        let g = arb_vec(&mut rng, -2.0, 2.0, 2, 10);
        let n = g.len();
        let cap_frac = rng.gen_range_f64(0.1, 1.0);
        let u = vec![1.0; n];
        let cap = cap_frac * n as f64 * 0.6;
        let mut s = vec![0.0; n];
        lmo_capped_simplex(&g, &u, cap, &mut s);
        let s_val: f64 = g.iter().zip(&s).map(|(a, b)| a * b).sum();
        // Candidate: scaled random mix kept feasible.
        let mut y: Vec<f64> = (0..n).map(|_| rng.gen_range_f64(0.0, 1.0)).collect();
        let ysum: f64 = y.iter().sum();
        if ysum > cap {
            for v in &mut y {
                *v *= cap / ysum;
            }
        }
        let y_val: f64 = g.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!(s_val <= y_val + 1e-9, "LMO {s_val} beaten by {y_val}");
    }
}

#[test]
fn solver_respects_feasibility_and_certifies() {
    let mut rng = ChaCha8::seed_from_u64(0x0b70_0004);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 8);
        let cores = rng.gen_range_usize(1, 4);
        let p0 = rng.gen_range_f64(0.0, 0.3);
        let tl = Timeline::build(&tasks);
        let ep = EnergyProgram::new(&tasks, &tl, cores, PolynomialPower::paper(3.0, p0));
        let r = solve_pgd(&ep, ep.initial_point(), &SolveOptions::fast());
        assert!(ep.is_feasible(&r.x, 1e-6));
        assert!(r.objective.is_finite() && r.objective > 0.0);
        assert!(r.gap >= -1e-9);
        // The certified gap bounds suboptimality vs. the initial point.
        let f0 = ep.objective(&ep.initial_point());
        assert!(r.objective <= f0 + 1e-9);
    }
}

#[test]
fn flow_minimum_frequency_is_consistent() {
    let mut rng = ChaCha8::seed_from_u64(0x0b70_0005);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 6);
        let cores = rng.gen_range_usize(1, 4);
        let tl = Timeline::build(&tasks);
        let f = min_frequency_by_flow(&tasks, &tl, cores, 1e-9);
        assert!(f > 0.0 && f.is_finite());
        assert!(feasible_at_frequency(&tasks, &tl, cores, f * (1.0 + 1e-6)));
        assert!(!feasible_at_frequency(&tasks, &tl, cores, f * 0.95));
        // More cores never raise the minimum frequency.
        let f_more = min_frequency_by_flow(&tasks, &tl, cores + 1, 1e-9);
        assert!(
            f_more <= f * (1.0 + 1e-6),
            "more cores raised f*: {f_more} > {f}"
        );
    }
}

#[test]
fn energy_program_objective_is_convex_along_segments() {
    let mut rng = ChaCha8::seed_from_u64(0x0b70_0006);
    for _ in 0..CASES {
        // Convexity spot-check: f(λx + (1−λ)y) ≤ λf(x) + (1−λ)f(y) for the
        // initial point and a projected perturbation.
        let tasks = arb_task_set(&mut rng, 6);
        let lambda = rng.gen_range_f64(0.0, 1.0);
        let tl = Timeline::build(&tasks);
        let ep = EnergyProgram::new(&tasks, &tl, 2, PolynomialPower::paper(2.5, 0.1));
        let x = ep.initial_point();
        let z: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(k, &v)| v * (0.3 + (k % 3) as f64 * 0.35))
            .collect();
        let mut y = vec![0.0; ep.dim()];
        ep.project(&z, &mut y);
        let mid: Vec<f64> = x
            .iter()
            .zip(&y)
            .map(|(a, b)| lambda * a + (1.0 - lambda) * b)
            .collect();
        let lhs = ep.objective(&mid);
        let rhs = lambda * ep.objective(&x) + (1.0 - lambda) * ep.objective(&y);
        assert!(
            lhs <= rhs + 1e-7 * (1.0 + rhs.abs()),
            "convexity violated: {lhs} > {rhs}"
        );
    }
}

#[test]
fn warm_start_matches_cold_solution_and_saves_iterations() {
    use esched_opt::SolverKind;
    let mut rng = ChaCha8::seed_from_u64(0x0b70_0007);
    let mut warm_iters = 0usize;
    let mut cold_iters = 0usize;
    for _ in 0..12 {
        let tasks = arb_task_set(&mut rng, 8);
        let tl = Timeline::build(&tasks);
        // The sweep pattern: solve at one static power, re-solve the same
        // instance at a neighboring one seeded from the first optimum.
        let ep_a = EnergyProgram::new(&tasks, &tl, 2, PolynomialPower::paper(3.0, 0.1));
        let ep_b = EnergyProgram::new(&tasks, &tl, 2, PolynomialPower::paper(3.0, 0.15));
        let opts = SolveOptions::fast();
        let first = SolverKind::ProjectedGradient.solve(&ep_a, &opts);
        let cold = SolverKind::ProjectedGradient.solve(&ep_b, &opts);
        let warm_opts = opts.clone().with_warm_start(first.x);
        let warm = SolverKind::ProjectedGradient.solve(&ep_b, &warm_opts);
        assert!(
            (warm.objective - cold.objective).abs() < 1e-4 * (1.0 + cold.objective),
            "warm and cold optima diverged: {} vs {}",
            warm.objective,
            cold.objective
        );
        warm_iters += warm.iters;
        cold_iters += cold.iters;
    }
    assert!(
        warm_iters <= cold_iters,
        "warm starts cost more iterations overall: {warm_iters} > {cold_iters}"
    );
}

#[test]
fn mismatched_warm_start_falls_back_to_cold_start() {
    let tasks = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)]);
    let tl = Timeline::build(&tasks);
    let ep = EnergyProgram::new(&tasks, &tl, 2, PolynomialPower::paper(3.0, 0.1));
    let opts = SolveOptions::fast();
    // Wrong dimension and non-finite entries must both be rejected, not
    // fed into the solver.
    let wrong_dim = opts.clone().with_warm_start(vec![1.0; ep.dim() + 1]);
    assert!(wrong_dim.warm_point(&ep).is_none());
    let non_finite = opts.clone().with_warm_start(vec![f64::NAN; ep.dim()]);
    assert!(non_finite.warm_point(&ep).is_none());
    let cold = esched_opt::SolverKind::ProjectedGradient.solve(&ep, &opts);
    let fallback = esched_opt::SolverKind::ProjectedGradient.solve(&ep, &wrong_dim);
    assert_eq!(cold.x, fallback.x, "fallback must reproduce the cold solve");
}
