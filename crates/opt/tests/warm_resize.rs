//! Regression tests for warm-starting solvers across task-set mutations.
//!
//! When the online engine re-certifies energy after an arrival or
//! completion, the `EnergyProgram` dimension changes between solves. A
//! stale warm start must never panic or silently corrupt the solve: the
//! direct entry points sanitize the start (wrong dimension or non-finite
//! entries fall back to the canonical interior point; feasible points
//! pass through untouched), and `warm_start_from_totals` carries the old
//! optimum's per-task totals into the new geometry.

use esched_opt::{
    kkt_report, solve_block_descent_from, solve_fista, solve_pgd, EnergyProgram, SolveOptions,
    SolverKind,
};
use esched_subinterval::Timeline;
use esched_types::{PolynomialPower, TaskSet};

fn program(tasks: &TaskSet, cores: usize) -> EnergyProgram {
    let tl = Timeline::build(tasks);
    EnergyProgram::new(tasks, &tl, cores, PolynomialPower::paper(3.0, 0.1))
}

fn small() -> TaskSet {
    TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)])
}

fn grown() -> TaskSet {
    TaskSet::from_triples(&[
        (0.0, 12.0, 4.0),
        (2.0, 10.0, 2.0),
        (4.0, 8.0, 4.0),
        (5.0, 14.0, 3.0),
    ])
}

#[test]
fn wrong_dimension_warm_start_does_not_panic_and_still_converges() {
    let ep_old = program(&small(), 2);
    let ep_new = program(&grown(), 2);
    assert_ne!(ep_old.dim(), ep_new.dim(), "mutation must change dim");

    // A stale optimum from the old program, fed raw into every direct
    // entry point of the new one.
    let stale = solve_pgd(&ep_old, ep_old.initial_point(), &SolveOptions::default()).x;
    let cold = solve_pgd(&ep_new, ep_new.initial_point(), &SolveOptions::precise()).objective;

    for (name, r) in [
        (
            "pgd",
            solve_pgd(&ep_new, stale.clone(), &SolveOptions::precise()),
        ),
        (
            "fista",
            solve_fista(&ep_new, stale.clone(), &SolveOptions::precise()),
        ),
        (
            "block_descent",
            solve_block_descent_from(&ep_new, stale.clone(), &SolveOptions::precise()),
        ),
    ] {
        assert_eq!(r.x.len(), ep_new.dim(), "{name}: wrong output dim");
        assert!(ep_new.is_feasible(&r.x, 1e-6), "{name}: infeasible result");
        assert!(
            (r.objective - cold).abs() < 1e-4 * (1.0 + cold),
            "{name}: warm {} vs cold {cold}",
            r.objective
        );
    }
}

#[test]
fn non_finite_warm_start_is_replaced() {
    let ep = program(&small(), 2);
    let mut bad = ep.initial_point();
    bad[0] = f64::NAN;
    let r = solve_pgd(&ep, bad, &SolveOptions::default());
    assert!(r.objective.is_finite());
    assert!(ep.is_feasible(&r.x, 1e-6));
}

#[test]
fn solver_kind_with_stale_warm_start_on_grown_program_is_safe() {
    let ep_old = program(&small(), 2);
    let ep_new = program(&grown(), 2);
    let stale = solve_pgd(&ep_old, ep_old.initial_point(), &SolveOptions::default()).x;
    let cold = SolverKind::ProjectedGradient
        .solve(&ep_new, &SolveOptions::precise())
        .objective;
    for kind in [
        SolverKind::ProjectedGradient,
        SolverKind::Fista,
        SolverKind::BlockDescent,
    ] {
        let opts = SolveOptions::precise().with_warm_start(stale.clone());
        let r = kind.solve(&ep_new, &opts);
        assert_eq!(r.x.len(), ep_new.dim());
        assert!(
            (r.objective - cold).abs() < 1e-4 * (1.0 + cold),
            "{kind:?}: {} vs {cold}",
            r.objective
        );
    }
}

#[test]
fn totals_remap_is_feasible_and_recovers_the_objective() {
    let ep_old = program(&small(), 2);
    let ep_new = program(&grown(), 2);
    let old_opt = solve_pgd(&ep_old, ep_old.initial_point(), &SolveOptions::precise());
    let totals = ep_old.total_times(&old_opt.x);

    let warm = ep_new.warm_start_from_totals(&totals);
    assert_eq!(warm.len(), ep_new.dim());
    assert!(ep_new.is_feasible(&warm, 1e-9), "remap must be feasible");

    let warm_r = solve_pgd(&ep_new, warm, &SolveOptions::precise());
    let cold_r = solve_pgd(&ep_new, ep_new.initial_point(), &SolveOptions::precise());
    assert!(
        (warm_r.objective - cold_r.objective).abs() < 1e-5 * (1.0 + cold_r.objective),
        "warm {} vs cold {}",
        warm_r.objective,
        cold_r.objective
    );
    let rep = kkt_report(&ep_new, &warm_r.x);
    assert!(rep.is_optimal(1e-4), "warm-started solve not certified");
}

#[test]
fn totals_remap_ignores_garbage_targets() {
    let ep = program(&grown(), 2);
    // Too-short, NaN, and negative targets must all degrade gracefully.
    for totals in [
        vec![],
        vec![f64::NAN, -1.0],
        vec![f64::INFINITY, 0.0, 1.0, 2.0, 3.0, 4.0],
    ] {
        let w = ep.warm_start_from_totals(&totals);
        assert_eq!(w.len(), ep.dim());
        assert!(ep.is_feasible(&w, 1e-9));
    }
}
