//! Maximum-flow substrate (Dinic's algorithm) and the flow-based
//! schedulability test.
//!
//! The related work the paper compares against ([Albers et al.] and
//! [Angel et al.], the papers' refs [2] and [4]) reduces speed-scaling on
//! multiprocessors to repeated maximum-flow computations. We implement the
//! underlying reduction once as a substrate: a task set is feasible on `m`
//! cores at uniform frequency cap `f` iff the following network admits a
//! flow saturating the source:
//!
//! ```text
//! source ──C_i/f──▶ task_i ──Δ_j──▶ subinterval_j ──m·Δ_j──▶ sink
//!                     (edge iff window covers subinterval)
//! ```
//!
//! This is the exact feasibility oracle; the interval-based conditions in
//! `esched-subinterval::analysis` are its combinatorial shadow. Binary
//! searching the cap over this oracle yields the minimum feasible uniform
//! frequency to any accuracy — the `O(n·f(n)·log U)` scheme of ref [4].

// Indexed loops below walk several parallel arrays at once; iterator
// zips would obscure the numerics. Silence clippy's range-loop lint here.
#![allow(clippy::needless_range_loop)]

use esched_subinterval::Timeline;
use esched_types::TaskSet;

/// An edge in the flow network (paired with its reverse).
#[derive(Debug, Clone, Copy)]
struct Edge {
    to: usize,
    cap: f64,
    /// Capacity the edge was created with (for flow extraction).
    initial_cap: f64,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// Opaque handle to an edge, for querying its flow after `max_flow`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeHandle {
    from: usize,
    index: usize,
}

/// Dinic's maximum-flow solver over `f64` capacities.
#[derive(Debug, Clone)]
pub struct Dinic {
    graph: Vec<Vec<Edge>>,
    /// Capacities below this are treated as zero when building levels.
    eps: f64,
}

impl Dinic {
    /// Create a network with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            graph: vec![Vec::new(); n],
            eps: 1e-12,
        }
    }

    /// Add a directed edge `from → to` with capacity `cap ≥ 0`. Returns a
    /// handle usable with [`Dinic::flow_of`] after [`Dinic::max_flow`].
    pub fn add_edge(&mut self, from: usize, to: usize, cap: f64) -> EdgeHandle {
        assert!(cap >= 0.0 && cap.is_finite());
        let rev_from = self.graph[to].len();
        let rev_to = self.graph[from].len();
        self.graph[from].push(Edge {
            to,
            cap,
            initial_cap: cap,
            rev: rev_from,
        });
        self.graph[to].push(Edge {
            to: from,
            cap: 0.0,
            initial_cap: 0.0,
            rev: rev_to,
        });
        EdgeHandle {
            from,
            index: rev_to,
        }
    }

    /// Flow pushed through an edge (valid after [`Dinic::max_flow`]):
    /// `initial capacity − residual capacity`, clamped at 0.
    pub fn flow_of(&self, handle: EdgeHandle) -> f64 {
        let e = &self.graph[handle.from][handle.index];
        (e.initial_cap - e.cap).max(0.0)
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1; self.graph.len()];
        let mut queue = std::collections::VecDeque::new();
        level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for e in &self.graph[v] {
                if e.cap > self.eps && level[e.to] < 0 {
                    level[e.to] = level[v] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        (level[t] >= 0).then_some(level)
    }

    fn dfs_augment(
        &mut self,
        v: usize,
        t: usize,
        pushed: f64,
        level: &[i32],
        iter: &mut [usize],
    ) -> f64 {
        if v == t {
            return pushed;
        }
        while iter[v] < self.graph[v].len() {
            let (to, cap, rev) = {
                let e = &self.graph[v][iter[v]];
                (e.to, e.cap, e.rev)
            };
            if cap > self.eps && level[to] == level[v] + 1 {
                let d = self.dfs_augment(to, t, pushed.min(cap), level, iter);
                if d > self.eps {
                    self.graph[v][iter[v]].cap -= d;
                    self.graph[to][rev].cap += d;
                    return d;
                }
            }
            iter[v] += 1;
        }
        0.0
    }

    /// Compute the maximum flow from `s` to `t`. Consumes the residual
    /// capacities in place (call on a fresh network).
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        let mut flow = 0.0;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut iter = vec![0usize; self.graph.len()];
            loop {
                let f = self.dfs_augment(s, t, f64::INFINITY, &level, &mut iter);
                if f <= self.eps {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

/// Exact schedulability test: can `tasks` be feasibly scheduled on `cores`
/// cores with every frequency at most `f_cap` (preemption + migration
/// allowed)?
pub fn feasible_at_frequency(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    f_cap: f64,
) -> bool {
    assert!(f_cap > 0.0);
    let n = tasks.len();
    let nsub = timeline.len();
    // Nodes: 0 = source, 1..=n tasks, n+1..=n+nsub subintervals, last = sink.
    let source = 0;
    let sink = n + nsub + 1;
    let mut net = Dinic::new(n + nsub + 2);
    let mut required = 0.0;
    for (i, t) in tasks.iter() {
        let need = t.wcec / f_cap;
        required += need;
        net.add_edge(source, 1 + i, need);
        for j in timeline.span(i) {
            net.add_edge(1 + i, 1 + n + j, timeline.delta(j));
        }
    }
    for j in 0..nsub {
        net.add_edge(1 + n + j, sink, cores as f64 * timeline.delta(j));
    }
    let flow = net.max_flow(source, sink);
    flow >= required * (1.0 - 1e-9) - 1e-9
}

/// Compute a feasible per-(task, subinterval) execution-time matrix at
/// uniform frequency `f_cap`, or `None` when the instance is infeasible at
/// that cap. `result[i][j]` is the time task `i` executes during
/// subinterval `j`; row sums equal `C_i / f_cap`.
///
/// This is the constructive counterpart of [`feasible_at_frequency`]: the
/// max-flow's task→subinterval edge flows *are* the execution times.
pub fn feasible_allocation(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    f_cap: f64,
) -> Option<Vec<Vec<f64>>> {
    assert!(f_cap > 0.0);
    let n = tasks.len();
    let nsub = timeline.len();
    let source = 0;
    let sink = n + nsub + 1;
    let mut net = Dinic::new(n + nsub + 2);
    let mut required = 0.0;
    let mut handles: Vec<Vec<(usize, super::flow::EdgeHandle)>> = Vec::with_capacity(n);
    for (i, t) in tasks.iter() {
        let need = t.wcec / f_cap;
        required += need;
        net.add_edge(source, 1 + i, need);
        let mut row = Vec::new();
        for j in timeline.span(i) {
            let h = net.add_edge(1 + i, 1 + n + j, timeline.delta(j));
            row.push((j, h));
        }
        handles.push(row);
    }
    for j in 0..nsub {
        net.add_edge(1 + n + j, sink, cores as f64 * timeline.delta(j));
    }
    let flow = net.max_flow(source, sink);
    if flow < required * (1.0 - 1e-9) - 1e-9 {
        return None;
    }
    let mut x = vec![vec![0.0; nsub]; n];
    for (i, row) in handles.iter().enumerate() {
        for &(j, h) in row {
            x[i][j] = net.flow_of(h);
        }
    }
    Some(x)
}

/// Binary-search the minimum uniform frequency cap at which the instance
/// is feasible, to relative accuracy `tol` — the ref-[4] scheme.
pub fn min_frequency_by_flow(tasks: &TaskSet, timeline: &Timeline, cores: usize, tol: f64) -> f64 {
    // Upper bound: serialize everything on one core inside the shortest
    // window — crude but safe.
    let mut hi = tasks
        .iter()
        .map(|(_, t)| t.intensity())
        .fold(0.0_f64, f64::max)
        .max(
            tasks.total_work()
                / timeline
                    .subintervals()
                    .iter()
                    .map(|s| s.delta())
                    .sum::<f64>()
                * tasks.len() as f64,
        )
        .max(1e-12);
    // Make sure hi is actually feasible (double until it is).
    while !feasible_at_frequency(tasks, timeline, cores, hi) {
        hi *= 2.0;
        assert!(hi.is_finite());
    }
    let mut lo = 0.0;
    while hi - lo > tol * (1.0 + hi) {
        let mid = 0.5 * (lo + hi);
        if mid <= 0.0 {
            break;
        }
        if feasible_at_frequency(tasks, timeline, cores, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_subinterval::{min_feasible_frequency, Timeline};
    use esched_types::TaskSet;

    #[test]
    fn dinic_textbook_instance() {
        // Classic 6-node example with known max flow 23.
        let mut d = Dinic::new(6);
        d.add_edge(0, 1, 16.0);
        d.add_edge(0, 2, 13.0);
        d.add_edge(1, 2, 10.0);
        d.add_edge(2, 1, 4.0);
        d.add_edge(1, 3, 12.0);
        d.add_edge(3, 2, 9.0);
        d.add_edge(2, 4, 14.0);
        d.add_edge(4, 3, 7.0);
        d.add_edge(3, 5, 20.0);
        d.add_edge(4, 5, 4.0);
        assert!((d.max_flow(0, 5) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn dinic_disconnected_is_zero() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 5.0);
        d.add_edge(2, 3, 5.0);
        assert_eq!(d.max_flow(0, 3), 0.0);
    }

    #[test]
    fn flow_feasibility_matches_interval_conditions() {
        let ts = TaskSet::from_triples(&[
            (0.0, 4.0, 6.0),
            (1.0, 5.0, 3.0),
            (0.0, 8.0, 2.0),
            (2.0, 6.0, 5.0),
        ]);
        let tl = Timeline::build(&ts);
        for m in [1usize, 2, 3] {
            let f_interval = min_feasible_frequency(&ts, m);
            assert!(
                feasible_at_frequency(&ts, &tl, m, f_interval * (1.0 + 1e-9)),
                "m={m}"
            );
            assert!(
                !feasible_at_frequency(&ts, &tl, m, f_interval * 0.98),
                "m={m}"
            );
            let f_flow = min_frequency_by_flow(&ts, &tl, m, 1e-9);
            assert!(
                (f_flow - f_interval).abs() < 1e-6 * (1.0 + f_interval),
                "m={m}: flow {f_flow} vs interval {f_interval}"
            );
        }
    }

    #[test]
    fn flow_rejects_parallelism_infeasible_instance() {
        // The interval conditions accept this, the flow does not: jobs 0
        // and 1 saturate both cores of [0,2], leaving job 2 only 2 time
        // units for 3 units of work (it cannot run on two cores at once).
        let ts = TaskSet::from_triples(&[(0.0, 2.0, 2.0), (0.0, 2.0, 2.0), (0.0, 4.0, 3.0)]);
        let tl = Timeline::build(&ts);
        assert!(min_feasible_frequency(&ts, 2) <= 1.0 + 1e-12);
        assert!(!feasible_at_frequency(&ts, &tl, 2, 1.0));
        // True minimum: job 2 needs 3/f ≤ 2 + (4 − 4/f) ⇒ f ≥ 7/6.
        let f = min_frequency_by_flow(&ts, &tl, 2, 1e-10);
        assert!((f - 7.0 / 6.0).abs() < 1e-6, "flow minimum {f} vs 7/6");
        assert!(feasible_at_frequency(&ts, &tl, 2, f * (1.0 + 1e-9)));
        assert!(!feasible_at_frequency(&ts, &tl, 2, f * (1.0 - 1e-6)));
    }

    #[test]
    fn feasible_allocation_extracts_a_valid_spread() {
        let ts = TaskSet::from_triples(&[(0.0, 2.0, 2.0), (0.0, 2.0, 2.0), (0.0, 4.0, 3.0)]);
        let tl = Timeline::build(&ts);
        let f = min_frequency_by_flow(&ts, &tl, 2, 1e-10) * (1.0 + 1e-9);
        let x = feasible_allocation(&ts, &tl, 2, f).expect("feasible at flow minimum");
        // Row sums = C_i / f.
        for (i, t) in ts.iter() {
            let sum: f64 = x[i].iter().sum();
            assert!(
                (sum - t.wcec / f).abs() < 1e-6,
                "task {i}: {sum} vs {}",
                t.wcec / f
            );
        }
        // Column sums within capacity; entries within Δ.
        for j in 0..tl.len() {
            let col: f64 = (0..ts.len()).map(|i| x[i][j]).sum();
            assert!(col <= 2.0 * tl.delta(j) + 1e-9);
            for i in 0..ts.len() {
                assert!(x[i][j] <= tl.delta(j) + 1e-9);
            }
        }
    }

    #[test]
    fn intro_example_feasible_on_two_cores_at_unit_frequency() {
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)]);
        let tl = Timeline::build(&ts);
        assert!(feasible_at_frequency(&ts, &tl, 2, 1.0));
        // τ3 alone forces f ≥ 1, so 0.9 is infeasible on any core count.
        assert!(!feasible_at_frequency(&ts, &tl, 8, 0.9));
    }
}
