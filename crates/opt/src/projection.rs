//! Euclidean projection onto the *capped simplex*
//! `{ y : 0 ≤ y_k ≤ u_k, Σ_k y_k ≤ c }`.
//!
//! The feasible region of the paper's reformulated energy program is a
//! Cartesian product of capped simplices — one per subinterval, because
//! each variable `x_{i,j}` appears in exactly one coupling constraint
//! `Σ_i x_{i,j} ≤ m·Δ_j`. Projection therefore decomposes blockwise, and
//! this module provides the single-block primitive.
//!
//! The projection is computed exactly (up to bisection tolerance) via the
//! KKT conditions: `y_k(λ) = clamp(z_k − λ, 0, u_k)` where the multiplier
//! `λ ≥ 0` is zero if the clamped point already satisfies the budget, and
//! otherwise solves `Σ_k y_k(λ) = c` — a piecewise-linear decreasing
//! equation solved by bisection.

use crate::scalar::bisect;

/// Clamp each coordinate into `[0, u_k]`.
fn clamp_box(z: &[f64], u: &[f64], out: &mut [f64]) {
    for ((o, &zi), &ui) in out.iter_mut().zip(z).zip(u) {
        *o = zi.max(0.0).min(ui);
    }
}

/// Project `z` onto `{0 ≤ y ≤ u, Σy ≤ cap}`, writing the result into `out`.
///
/// # Panics
/// If slice lengths disagree, any `u_k < 0`, or `cap < 0`.
pub fn project_capped_simplex(z: &[f64], u: &[f64], cap: f64, out: &mut [f64]) {
    assert_eq!(z.len(), u.len());
    assert_eq!(z.len(), out.len());
    assert!(cap >= 0.0, "negative capacity {cap}");
    debug_assert!(u.iter().all(|&x| x >= 0.0));

    if z.is_empty() {
        return;
    }

    clamp_box(z, u, out);
    let sum: f64 = out.iter().sum();
    if sum <= cap {
        return; // budget slack: λ = 0, box clamp is the projection.
    }

    // Σ_k clamp(z_k − λ) is continuous, non-increasing in λ; at λ = 0 it
    // exceeds cap, and at λ = max(z_k) it is 0 ≤ cap. Bisect.
    let lam_hi = z.iter().cloned().fold(0.0_f64, f64::max).max(1e-30);
    let residual = |lam: f64| -> f64 {
        z.iter()
            .zip(u)
            .map(|(&zi, &ui)| (zi - lam).max(0.0).min(ui))
            .sum::<f64>()
            - cap
    };
    let lam = bisect(residual, 0.0, lam_hi, 1e-14);
    for ((o, &zi), &ui) in out.iter_mut().zip(z).zip(u) {
        *o = (zi - lam).max(0.0).min(ui);
    }
    // Exact-budget polish: distribute the tiny bisection residue over the
    // strictly interior coordinates so downstream feasibility checks see
    // Σ ≤ cap precisely.
    let s: f64 = out.iter().sum();
    if s > cap {
        let excess = s - cap;
        let interior: f64 = out
            .iter()
            .zip(u)
            .filter(|&(&y, &ui)| y > 0.0 && y < ui)
            .map(|(&y, _)| y)
            .sum();
        if interior > 0.0 {
            let scale = excess / interior;
            for (y, &ui) in out.iter_mut().zip(u) {
                if *y > 0.0 && *y < ui {
                    *y -= *y * scale;
                }
            }
        }
    }
}

/// Linear-minimization oracle over the same capped simplex:
/// `argmin_{0 ≤ s ≤ u, Σs ≤ cap} ⟨g, s⟩`.
///
/// Greedy: sort coordinates by gradient ascending and fill `s_k = u_k`
/// while the gradient is negative and budget remains. (Positive-gradient
/// coordinates stay at 0 since the budget constraint is `≤`.) Used by
/// Frank–Wolfe and to compute certified duality gaps.
pub fn lmo_capped_simplex(g: &[f64], u: &[f64], cap: f64, out: &mut [f64]) {
    assert_eq!(g.len(), u.len());
    assert_eq!(g.len(), out.len());
    out.fill(0.0);
    let mut order: Vec<usize> = (0..g.len()).collect();
    order.sort_by(|&a, &b| g[a].partial_cmp(&g[b]).expect("finite gradient"));
    let mut budget = cap;
    for k in order {
        if g[k] >= 0.0 || budget <= 0.0 {
            break;
        }
        let take = u[k].min(budget);
        out[k] = take;
        budget -= take;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_feasible(y: &[f64], u: &[f64], cap: f64) {
        for (&yi, &ui) in y.iter().zip(u) {
            assert!(
                yi >= -1e-12 && yi <= ui + 1e-12,
                "box violated: {yi} vs {ui}"
            );
        }
        assert!(
            y.iter().sum::<f64>() <= cap + 1e-9,
            "budget violated: {} > {cap}",
            y.iter().sum::<f64>()
        );
    }

    #[test]
    fn projection_is_identity_on_feasible_points() {
        let z = [0.5, 0.25];
        let u = [1.0, 1.0];
        let mut out = [0.0; 2];
        project_capped_simplex(&z, &u, 1.0, &mut out);
        assert_eq!(out, z);
    }

    #[test]
    fn projection_clamps_box_when_budget_slack() {
        let z = [2.0, -1.0];
        let u = [1.0, 1.0];
        let mut out = [0.0; 2];
        project_capped_simplex(&z, &u, 5.0, &mut out);
        assert_eq!(out, [1.0, 0.0]);
    }

    #[test]
    fn projection_onto_plain_simplex() {
        // u large → reduces to the classic simplex projection.
        // Projecting (1,1) onto Σ ≤ 1 gives (0.5, 0.5).
        let z = [1.0, 1.0];
        let u = [10.0, 10.0];
        let mut out = [0.0; 2];
        project_capped_simplex(&z, &u, 1.0, &mut out);
        assert!((out[0] - 0.5).abs() < 1e-9);
        assert!((out[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn projection_respects_caps_under_budget_pressure() {
        // z = (3, 3, 0.1), u = (1, 2, 1), cap = 2.5.
        // λ solves min(3−λ,1)+min(3−λ,2)+clamp(0.1−λ) = 2.5.
        let z = [3.0, 3.0, 0.1];
        let u = [1.0, 2.0, 1.0];
        let mut out = [0.0; 3];
        project_capped_simplex(&z, &u, 2.5, &mut out);
        assert_feasible(&out, &u, 2.5);
        assert!((out.iter().sum::<f64>() - 2.5).abs() < 1e-9);
        // Coordinate 0 hits its cap; coordinate 2 drops to 0 (z too small).
        assert!((out[0] - 1.0).abs() < 1e-9);
        assert!(out[2].abs() < 1e-9);
        assert!((out[1] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn projection_variational_inequality_holds() {
        // ⟨z − P(z), y − P(z)⟩ ≤ 0 for all feasible y: test against a grid
        // of feasible points.
        let z = [1.3, -0.2, 0.9, 2.4];
        let u = [1.0, 0.5, 1.0, 1.5];
        let cap = 2.0;
        let mut p = [0.0; 4];
        project_capped_simplex(&z, &u, cap, &mut p);
        assert_feasible(&p, &u, cap);
        // Random-ish feasible test points.
        let candidates = [
            [0.0, 0.0, 0.0, 0.0],
            [1.0, 0.5, 0.5, 0.0],
            [0.5, 0.5, 1.0, 0.0],
            [0.0, 0.0, 0.5, 1.5],
            [1.0, 0.0, 0.0, 1.0],
        ];
        for y in candidates {
            assert_feasible(&y, &u, cap);
            let ip: f64 = (0..4).map(|k| (z[k] - p[k]) * (y[k] - p[k])).sum();
            assert!(ip <= 1e-7, "variational inequality violated: {ip}");
        }
    }

    #[test]
    fn projection_zero_cap_gives_zero() {
        let z = [1.0, 2.0];
        let u = [1.0, 1.0];
        let mut out = [9.0; 2];
        project_capped_simplex(&z, &u, 0.0, &mut out);
        assert!(out.iter().all(|&y| y.abs() < 1e-9));
    }

    #[test]
    fn projection_empty_input() {
        let mut out: [f64; 0] = [];
        project_capped_simplex(&[], &[], 1.0, &mut out);
    }

    #[test]
    fn lmo_fills_most_negative_first() {
        let g = [-3.0, 1.0, -1.0];
        let u = [1.0, 5.0, 5.0];
        let mut s = [0.0; 3];
        lmo_capped_simplex(&g, &u, 4.0, &mut s);
        // g0 = −3 filled to cap 1, then g2 = −1 takes remaining 3 of its 5;
        // g1 > 0 stays 0.
        assert_eq!(s, [1.0, 0.0, 3.0]);
    }

    #[test]
    fn lmo_leaves_budget_unused_when_gradients_positive() {
        let g = [2.0, 0.5];
        let u = [1.0, 1.0];
        let mut s = [9.0; 2];
        lmo_capped_simplex(&g, &u, 2.0, &mut s);
        assert_eq!(s, [0.0, 0.0]);
    }

    #[test]
    fn lmo_minimizes_inner_product() {
        // Compare against brute-force over vertices of a small instance.
        let g = [-1.0, -2.0, 0.5];
        let u = [1.0, 1.0, 1.0];
        let cap = 1.5;
        let mut s = [0.0; 3];
        lmo_capped_simplex(&g, &u, cap, &mut s);
        let val: f64 = g.iter().zip(&s).map(|(a, b)| a * b).sum();
        // Enumerate a fine grid of feasible points and check none is better.
        let steps = 7;
        for a in 0..=steps {
            for b in 0..=steps {
                for c in 0..=steps {
                    let y = [
                        a as f64 / steps as f64,
                        b as f64 / steps as f64,
                        c as f64 / steps as f64,
                    ];
                    if y.iter().sum::<f64>() <= cap {
                        let v: f64 = g.iter().zip(&y).map(|(p, q)| p * q).sum();
                        assert!(val <= v + 1e-12);
                    }
                }
            }
        }
    }
}
