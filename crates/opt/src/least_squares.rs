//! Nonlinear least-squares fit of the power curve `p(f) = γ·f^α + p₀`
//! to a measured frequency/power table (Section VI.C).
//!
//! For fixed `α` the model is *linear* in `(γ, p₀)`, so the fit decomposes
//! into an inner 2×2 linear least-squares solve and an outer 1-D search
//! over `α`. The outer problem is smooth and, for real processor tables,
//! unimodal over the physically sensible range `α ∈ [1.5, 4]`; a coarse
//! grid scan followed by golden-section refinement finds it reliably
//! without Jacobian bookkeeping.

use crate::scalar::golden_min;
use esched_types::{FreqLevel, PolynomialPower};

/// Result of a curve fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerFit {
    /// Fitted `γ`.
    pub gamma: f64,
    /// Fitted `α`.
    pub alpha: f64,
    /// Fitted `p₀`.
    pub p0: f64,
    /// Residual sum of squares at the fit.
    pub rss: f64,
}

impl PowerFit {
    /// Convert to a [`PolynomialPower`] model. `α` is clamped up to 2 and
    /// `p₀` down to 0 if the unconstrained fit strayed (Theorem 1 needs
    /// `α ≥ 2`; negative static power is unphysical).
    pub fn into_model(self) -> PolynomialPower {
        PolynomialPower::new(self.gamma.max(1e-30), self.alpha.max(2.0), self.p0.max(0.0))
            .expect("fit produced invalid model")
    }
}

/// Solve the inner problem: best `(γ, p₀)` and RSS for fixed `α`.
///
/// Minimizes `Σ_k (γ·f_k^α + p₀ − p_k)²` — normal equations of a 2-column
/// design matrix `[f^α, 1]`.
fn fit_linear_given_alpha(points: &[FreqLevel], alpha: f64) -> (f64, f64, f64) {
    let n = points.len() as f64;
    let mut sx = 0.0; // Σ f^α
    let mut sxx = 0.0; // Σ f^2α
    let mut sy = 0.0; // Σ p
    let mut sxy = 0.0; // Σ f^α·p
    for l in points {
        let xa = l.freq.powf(alpha);
        sx += xa;
        sxx += xa * xa;
        sy += l.power;
        sxy += xa * l.power;
    }
    let det = n * sxx - sx * sx;
    let (gamma, p0) = if det.abs() < 1e-300 {
        (0.0, sy / n)
    } else {
        ((n * sxy - sx * sy) / det, (sxx * sy - sx * sxy) / det)
    };
    let rss: f64 = points
        .iter()
        .map(|l| {
            let r = gamma * l.freq.powf(alpha) + p0 - l.power;
            r * r
        })
        .sum();
    (gamma, p0, rss)
}

/// Fit `p(f) = γ·f^α + p₀` to the measured `points`.
///
/// `alpha_range` bounds the exponent search (use `(2.0, 3.5)` to respect
/// the paper's convexity requirement, or `(1.5, 4.0)` for an unconstrained
/// diagnostic fit).
///
/// # Panics
/// If fewer than 3 points are given (the model has 3 parameters).
pub fn fit_power_curve(points: &[FreqLevel], alpha_range: (f64, f64)) -> PowerFit {
    assert!(
        points.len() >= 3,
        "need at least 3 points to fit a 3-parameter model"
    );
    let (lo, hi) = alpha_range;
    assert!(lo < hi && lo > 0.0);

    // Coarse grid to bracket the best alpha.
    let grid_steps = 60;
    let mut best_a = lo;
    let mut best_rss = f64::INFINITY;
    for k in 0..=grid_steps {
        let a = lo + (hi - lo) * k as f64 / grid_steps as f64;
        let (_, _, rss) = fit_linear_given_alpha(points, a);
        if rss < best_rss {
            best_rss = rss;
            best_a = a;
        }
    }
    // Golden-section refinement around the best grid cell.
    let width = (hi - lo) / grid_steps as f64;
    let a_lo = (best_a - 2.0 * width).max(lo);
    let a_hi = (best_a + 2.0 * width).min(hi);
    let alpha = golden_min(|a| fit_linear_given_alpha(points, a).2, a_lo, a_hi, 1e-12);
    let (gamma, p0, rss) = fit_linear_given_alpha(points, alpha);
    PowerFit {
        gamma,
        alpha,
        p0,
        rss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(pairs: &[(f64, f64)]) -> Vec<FreqLevel> {
        pairs
            .iter()
            .map(|&(freq, power)| FreqLevel { freq, power })
            .collect()
    }

    #[test]
    fn recovers_exact_synthetic_parameters() {
        // Generate from p(f) = 2·f^2.5 + 7 and fit back.
        let pts: Vec<FreqLevel> = [0.5, 1.0, 1.5, 2.0, 3.0]
            .iter()
            .map(|&f: &f64| FreqLevel {
                freq: f,
                power: 2.0 * f.powf(2.5) + 7.0,
            })
            .collect();
        let fit = fit_power_curve(&pts, (1.5, 4.0));
        assert!((fit.alpha - 2.5).abs() < 1e-6, "alpha = {}", fit.alpha);
        assert!((fit.gamma - 2.0).abs() < 1e-5, "gamma = {}", fit.gamma);
        assert!((fit.p0 - 7.0).abs() < 1e-5, "p0 = {}", fit.p0);
        assert!(fit.rss < 1e-10);
    }

    #[test]
    fn xscale_fit_matches_paper_ballpark() {
        // The paper reports p(f) = 3.855e-6·f^2.867 + 63.58 for the XScale
        // table. Exact agreement depends on their fitting procedure; ours
        // must land in the same neighbourhood and predict the measured
        // powers well.
        let pts = table(&[
            (150.0, 80.0),
            (400.0, 170.0),
            (600.0, 400.0),
            (800.0, 900.0),
            (1000.0, 1600.0),
        ]);
        let fit = fit_power_curve(&pts, (2.0, 3.5));
        assert!(
            (2.5..=3.2).contains(&fit.alpha),
            "alpha = {} out of paper neighbourhood",
            fit.alpha
        );
        assert!(fit.p0 > 0.0 && fit.p0 < 150.0, "p0 = {}", fit.p0);
        // Predicted power within 20% at every level.
        let model = fit.into_model();
        use esched_types::PowerModel;
        for l in &pts {
            let pred = model.power(l.freq);
            assert!(
                (pred - l.power).abs() / l.power < 0.25,
                "f={}: predicted {pred}, measured {}",
                l.freq,
                l.power
            );
        }
    }

    #[test]
    fn alpha_constraint_is_respected() {
        // Nearly linear data would prefer alpha < 2; the constrained range
        // must clamp to its boundary.
        let pts: Vec<FreqLevel> = [1.0, 2.0, 3.0, 4.0]
            .iter()
            .map(|&f| FreqLevel {
                freq: f,
                power: 10.0 * f + 1.0,
            })
            .collect();
        let fit = fit_power_curve(&pts, (2.0, 3.5));
        assert!(fit.alpha >= 2.0 - 1e-9);
    }

    #[test]
    #[should_panic(expected = "3 points")]
    fn rejects_underdetermined_input() {
        let pts = table(&[(1.0, 1.0), (2.0, 2.0)]);
        let _ = fit_power_curve(&pts, (2.0, 3.0));
    }

    #[test]
    fn into_model_clamps_unphysical_values() {
        let fit = PowerFit {
            gamma: 1.0,
            alpha: 1.7,
            p0: -0.5,
            rss: 0.0,
        };
        let m = fit.into_model();
        assert_eq!(m.alpha, 2.0);
        assert_eq!(m.p0, 0.0);
    }
}
