//! Projected gradient descent with backtracking line search.
//!
//! The workhorse solver for the reformulated energy program. Each
//! iteration takes a gradient step, projects blockwise onto the product of
//! capped simplices, and backtracks the step size until the standard
//! sufficient-decrease condition for proximal gradient methods holds:
//!
//! ```text
//! E(x⁺) ≤ E(x) + ⟨∇E(x), x⁺ − x⟩ + ‖x⁺ − x‖² / (2s)
//! ```
//!
//! The objective is convex and smooth on the region where every `X_i` is
//! bounded away from zero; monotone descent from a feasible interior start
//! keeps iterates in such a region (energy diverges as `X_i → 0`), so the
//! method converges to the global optimum. Convergence is *certified* via
//! the Frank–Wolfe duality gap, not just objective stalling.

use crate::energy_program::EnergyProgram;
use crate::solver::{IterSample, SolveOptions, SolveResult, SolverTelemetry};
use esched_obs::{event, span, Level};
use std::time::Instant;

/// Run projected gradient descent from `x0` (must be feasible;
/// use [`EnergyProgram::initial_point`]).
pub fn solve_pgd(ep: &EnergyProgram, x0: Vec<f64>, opts: &SolveOptions) -> SolveResult {
    let dim = ep.dim();
    let x0 = crate::solver::sanitize_start(ep, x0);
    let _span = span!(
        Level::Debug,
        "solve_pgd",
        dim = dim,
        max_iters = opts.max_iters
    );
    let t_start = Instant::now();

    let mut x = x0;
    let mut fx = ep.objective(&x);
    let mut g = vec![0.0; dim];
    let mut trial = vec![0.0; dim];
    let mut cand = vec![0.0; dim];
    let mut step = 1.0_f64;
    let mut stalled = 0usize;
    let mut converged = false;
    let mut iters = 0usize;
    let mut gap = f64::INFINITY;
    let mut stalls = 0usize;
    let mut gap_evals = 0usize;
    let mut backtracks = 0usize;
    let mut iter_trace = opts.trace_iters.then(Vec::new);

    for it in 0..opts.max_iters {
        iters = it + 1;
        ep.gradient(&x, &mut g);

        // Backtracking: find a step satisfying sufficient decrease.
        let mut accepted = false;
        let mut f_new = fx;
        for _ in 0..60 {
            for k in 0..dim {
                trial[k] = x[k] - step * g[k];
            }
            ep.project(&trial, &mut cand);
            let mut lin = 0.0;
            let mut dist2 = 0.0;
            for k in 0..dim {
                let d = cand[k] - x[k];
                lin += g[k] * d;
                dist2 += d * d;
            }
            f_new = ep.objective(&cand);
            if f_new <= fx + lin + dist2 / (2.0 * step) + 1e-15 * (1.0 + fx.abs()) {
                accepted = true;
                // Fixed point of the projected-gradient map → stationary.
                if dist2.sqrt() <= 1e-14 * (1.0 + x.iter().map(|v| v * v).sum::<f64>().sqrt()) {
                    x.copy_from_slice(&cand);
                    fx = f_new;
                    converged = true;
                }
                break;
            }
            step *= 0.5;
            backtracks += 1;
            if step < 1e-18 {
                break;
            }
        }
        if !accepted {
            // Cannot make progress at any representable step: stationary.
            converged = true;
            break;
        }

        let decrease = fx - f_new;
        x.copy_from_slice(&cand);
        fx = f_new;
        if let Some(trace) = iter_trace.as_mut() {
            trace.push(IterSample {
                iter: iters,
                objective: fx,
                gap,
                step,
            });
        }
        // Gentle step growth: recover from over-conservative backtracking.
        step *= 1.3;

        if converged {
            break;
        }

        if decrease <= opts.rel_tol * (1.0 + fx.abs()) {
            stalled += 1;
            stalls += 1;
            if stalled >= opts.stall_iters {
                converged = true;
                break;
            }
        } else {
            stalled = 0;
        }

        if (it + 1) % opts.gap_check_every == 0 {
            gap = ep.duality_gap(&x);
            gap_evals += 1;
            if gap <= opts.gap_tol * (1.0 + fx.abs()) {
                converged = true;
                break;
            }
        }
    }

    if !gap.is_finite() || converged {
        gap = ep.duality_gap(&x);
        gap_evals += 1;
    }
    if !converged {
        event!(
            Level::Warn,
            "pgd hit iteration cap",
            iters = iters,
            gap = gap
        );
    }
    let telemetry = SolverTelemetry {
        iters,
        stalls,
        gap_evals,
        backtracks,
        wall_s: t_start.elapsed().as_secs_f64(),
        final_gap: gap,
        converged,
    };
    telemetry.publish("pgd");
    event!(
        Level::Debug,
        "pgd done",
        iters = iters,
        gap_evals = gap_evals,
        backtracks = backtracks,
        gap = gap,
        converged = converged,
    );
    SolveResult {
        objective: fx,
        x,
        gap,
        iters,
        converged,
        telemetry,
        iter_trace,
        dual: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_subinterval::Timeline;
    use esched_types::{PolynomialPower, TaskSet};

    fn solve(
        tasks: &TaskSet,
        cores: usize,
        alpha: f64,
        p0: f64,
        opts: &SolveOptions,
    ) -> SolveResult {
        let tl = Timeline::build(tasks);
        let ep = EnergyProgram::new(tasks, &tl, cores, PolynomialPower::paper(alpha, p0));
        let x0 = ep.initial_point();
        solve_pgd(&ep, x0, opts)
    }

    #[test]
    fn solves_paper_section_ii_example() {
        // Three tasks on two cores, p(f) = f³ + 0.01. The paper's KKT
        // solution: x = (8/3, 4/3, 4) in [4,8], y1 = 8, y2 = 4, with
        // dynamic energy 64/(32/3)² + 8/(16/3)² + 64/16 = 155/32 and
        // static energy 0.01·20 = 0.2.
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)]);
        let r = solve(&ts, 2, 3.0, 0.01, &SolveOptions::precise());
        assert!(r.converged, "gap = {}", r.gap);
        let expect = 155.0 / 32.0 + 0.2;
        assert!(
            (r.objective - expect).abs() < 1e-5,
            "objective {} vs expected {}",
            r.objective,
            expect
        );
        // Per-task total times at the optimum.
        let tl = Timeline::build(&ts);
        let ep = EnergyProgram::new(&ts, &tl, 2, PolynomialPower::paper(3.0, 0.01));
        let tt = ep.total_times(&r.x);
        assert!((tt[0] - 32.0 / 3.0).abs() < 1e-3, "X0 = {}", tt[0]);
        assert!((tt[1] - 16.0 / 3.0).abs() < 1e-3, "X1 = {}", tt[1]);
        assert!((tt[2] - 4.0).abs() < 1e-3, "X2 = {}", tt[2]);
    }

    #[test]
    fn zero_static_power_stretches_everything_when_uncontended() {
        // One task, one core, p0 = 0: optimal is the full window.
        let ts = TaskSet::from_triples(&[(0.0, 10.0, 5.0)]);
        let r = solve(&ts, 1, 3.0, 0.0, &SolveOptions::default());
        // E = C³/X² = 125/100 = 1.25.
        assert!(
            (r.objective - 1.25).abs() < 1e-6,
            "objective {}",
            r.objective
        );
    }

    #[test]
    fn high_static_power_shrinks_execution_time() {
        // One task, one core, p(f) = f² + 0.25 with window 5 and work 2:
        // optimum runs at f_crit = 0.5 using 4 of the 5 time units
        // (the paper's Fig. 3), energy 2.0.
        let ts = TaskSet::from_triples(&[(0.0, 5.0, 2.0)]);
        let r = solve(&ts, 1, 2.0, 0.25, &SolveOptions::precise());
        assert!(
            (r.objective - 2.0).abs() < 1e-6,
            "objective {}",
            r.objective
        );
        let tl = Timeline::build(&ts);
        let ep = EnergyProgram::new(&ts, &tl, 1, PolynomialPower::paper(2.0, 0.25));
        assert!((ep.total_time(&r.x, 0) - 4.0).abs() < 1e-4);
    }

    #[test]
    fn objective_never_increases() {
        let ts = TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ]);
        let tl = Timeline::build(&ts);
        let ep = EnergyProgram::new(&ts, &tl, 4, PolynomialPower::paper(3.0, 0.0));
        let x0 = ep.initial_point();
        let f0 = ep.objective(&x0);
        let r = solve_pgd(&ep, x0, &SolveOptions::default());
        assert!(r.objective <= f0 + 1e-12);
        assert!(ep.is_feasible(&r.x, 1e-7));
        assert!(r.gap <= 1e-5 * (1.0 + r.objective.abs()));
    }

    #[test]
    fn more_cores_never_cost_energy() {
        let ts = TaskSet::from_triples(&[
            (0.0, 6.0, 4.0),
            (0.0, 6.0, 4.0),
            (0.0, 6.0, 4.0),
            (0.0, 6.0, 4.0),
        ]);
        let mut last = f64::INFINITY;
        for m in 1..=4 {
            let r = solve(&ts, m, 3.0, 0.05, &SolveOptions::default());
            assert!(
                r.objective <= last + 1e-6,
                "m={m}: {} > {last}",
                r.objective
            );
            last = r.objective;
        }
    }
}
