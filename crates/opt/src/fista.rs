//! FISTA: accelerated projected gradient with adaptive restart.
//!
//! Nesterov-style momentum on top of the projected gradient map gives the
//! `O(1/k²)` rate for the smooth convex energy program, typically cutting
//! iteration counts several-fold on ill-conditioned instances (many tasks
//! with very different `C_i`). Gradient-based adaptive restart (O'Donoghue
//! & Candès) guards against the oscillation momentum can introduce.

use crate::energy_program::EnergyProgram;
use crate::solver::{IterSample, SolveOptions, SolveResult, SolverTelemetry};
use esched_obs::{event, span, Level};
use std::time::Instant;

/// Run FISTA from `x0` (must be feasible).
pub fn solve_fista(ep: &EnergyProgram, x0: Vec<f64>, opts: &SolveOptions) -> SolveResult {
    let dim = ep.dim();
    let x0 = crate::solver::sanitize_start(ep, x0);
    let _span = span!(
        Level::Debug,
        "solve_fista",
        dim = dim,
        max_iters = opts.max_iters
    );
    let t_start = Instant::now();

    let mut x = x0.clone(); // current iterate
    let mut y = x0; // extrapolated point
    let mut x_prev = x.clone();
    let mut fx = ep.objective(&x);
    let mut g = vec![0.0; dim];
    let mut trial = vec![0.0; dim];
    let mut cand = vec![0.0; dim];
    let mut t = 1.0_f64; // momentum parameter
    let mut step = 1.0_f64;
    let mut stalled = 0usize;
    let mut converged = false;
    let mut iters = 0usize;
    let mut gap = f64::INFINITY;
    let mut stalls = 0usize;
    let mut gap_evals = 0usize;
    let mut backtracks = 0usize;
    let mut restarts = 0usize;
    let mut iter_trace = opts.trace_iters.then(Vec::new);

    for it in 0..opts.max_iters {
        iters = it + 1;
        ep.gradient(&y, &mut g);
        let fy = ep.objective(&y);

        // Backtracking at the extrapolated point.
        let mut accepted = false;
        for _ in 0..60 {
            for k in 0..dim {
                trial[k] = y[k] - step * g[k];
            }
            ep.project(&trial, &mut cand);
            let mut lin = 0.0;
            let mut dist2 = 0.0;
            for k in 0..dim {
                let d = cand[k] - y[k];
                lin += g[k] * d;
                dist2 += d * d;
            }
            let f_new = ep.objective(&cand);
            if f_new <= fy + lin + dist2 / (2.0 * step) + 1e-15 * (1.0 + fy.abs()) {
                accepted = true;
                break;
            }
            step *= 0.5;
            backtracks += 1;
            if step < 1e-18 {
                break;
            }
        }
        if !accepted {
            converged = true;
            break;
        }

        let f_new = ep.objective(&cand);

        // Adaptive restart: if momentum points against descent
        // (⟨y − x⁺, x⁺ − x⟩ > 0), drop it.
        let mut restart_dot = 0.0;
        for k in 0..dim {
            restart_dot += (y[k] - cand[k]) * (cand[k] - x[k]);
        }
        if restart_dot > 0.0 {
            t = 1.0;
            restarts += 1;
        }

        x_prev.copy_from_slice(&x);
        x.copy_from_slice(&cand);
        let decrease = fx - f_new;
        fx = f_new;
        if let Some(trace) = iter_trace.as_mut() {
            trace.push(IterSample {
                iter: iters,
                objective: fx,
                gap,
                step,
            });
        }

        // Momentum update.
        let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
        let beta = (t - 1.0) / t_next;
        for k in 0..dim {
            y[k] = x[k] + beta * (x[k] - x_prev[k]);
        }
        // Extrapolation can leave the polytope; the next projection handles
        // it, but keep y finite and sane.
        t = t_next;

        if decrease.abs() <= opts.rel_tol * (1.0 + fx.abs()) {
            stalled += 1;
            stalls += 1;
            if stalled >= opts.stall_iters {
                converged = true;
                break;
            }
        } else {
            stalled = 0;
        }

        if (it + 1) % opts.gap_check_every == 0 {
            gap = ep.duality_gap(&x);
            gap_evals += 1;
            if gap <= opts.gap_tol * (1.0 + fx.abs()) {
                converged = true;
                break;
            }
        }
    }

    if !gap.is_finite() || converged {
        gap = ep.duality_gap(&x);
        gap_evals += 1;
    }
    if !converged {
        event!(
            Level::Warn,
            "fista hit iteration cap",
            iters = iters,
            gap = gap
        );
    }
    let telemetry = SolverTelemetry {
        iters,
        stalls,
        gap_evals,
        backtracks,
        wall_s: t_start.elapsed().as_secs_f64(),
        final_gap: gap,
        converged,
    };
    telemetry.publish("fista");
    event!(
        Level::Debug,
        "fista done",
        iters = iters,
        gap_evals = gap_evals,
        backtracks = backtracks,
        restarts = restarts,
        gap = gap,
        converged = converged,
    );
    // Momentum is not monotone: make sure we report the better of x and the
    // plain objective (x is always feasible; y need not be).
    let objective = ep.objective(&x);
    SolveResult {
        x,
        objective,
        gap,
        iters,
        converged,
        telemetry,
        iter_trace,
        dual: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::solve_pgd;
    use esched_subinterval::Timeline;
    use esched_types::{PolynomialPower, TaskSet};

    fn vd_tasks() -> TaskSet {
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    #[test]
    fn fista_matches_pgd_objective() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        for (alpha, p0) in [(3.0, 0.0), (3.0, 0.2), (2.0, 0.1)] {
            let ep = EnergyProgram::new(&ts, &tl, 4, PolynomialPower::paper(alpha, p0));
            let a = solve_pgd(&ep, ep.initial_point(), &SolveOptions::default());
            let b = solve_fista(&ep, ep.initial_point(), &SolveOptions::default());
            assert!(
                (a.objective - b.objective).abs() < 1e-4 * (1.0 + a.objective),
                "alpha={alpha} p0={p0}: pgd {} vs fista {}",
                a.objective,
                b.objective
            );
            assert!(ep.is_feasible(&b.x, 1e-7));
        }
    }

    #[test]
    fn fista_solves_section_ii_example() {
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)]);
        let tl = Timeline::build(&ts);
        let ep = EnergyProgram::new(&ts, &tl, 2, PolynomialPower::paper(3.0, 0.01));
        let r = solve_fista(&ep, ep.initial_point(), &SolveOptions::precise());
        let expect = 155.0 / 32.0 + 0.2;
        assert!(
            (r.objective - expect).abs() < 1e-5,
            "objective {} vs {}",
            r.objective,
            expect
        );
    }

    #[test]
    fn fista_certifies_small_gap() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let ep = EnergyProgram::new(&ts, &tl, 4, PolynomialPower::paper(3.0, 0.2));
        let r = solve_fista(&ep, ep.initial_point(), &SolveOptions::default());
        assert!(r.gap <= 1e-5 * (1.0 + r.objective.abs()), "gap = {}", r.gap);
    }
}
