//! One-dimensional solvers: bisection root finding, Newton's method, and
//! golden-section minimization.
//!
//! These primitives back the capped-simplex projection (dual bisection),
//! Frank–Wolfe line search (golden section), and the power-curve fit
//! (golden section over the exponent).

/// Default tolerance for scalar solves.
pub const TOL: f64 = 1e-12;

/// Find a root of `f` in `[lo, hi]` by bisection. Requires a sign change
/// (or a root at an endpoint); returns the midpoint of the final bracket.
///
/// # Panics
/// If `f(lo)` and `f(hi)` have the same (nonzero) sign.
pub fn bisect(mut f: impl FnMut(f64) -> f64, mut lo: f64, mut hi: f64, tol: f64) -> f64 {
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return lo;
    }
    if fhi == 0.0 {
        return hi;
    }
    assert!(
        flo * fhi < 0.0,
        "bisect requires a sign change: f({lo}) = {flo}, f({hi}) = {fhi}"
    );
    // 200 iterations halve the bracket far below f64 resolution even for
    // astronomically wide inputs; the tolerance check usually exits earlier.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if fm == 0.0 || (hi - lo) < tol * (1.0 + mid.abs()) {
            return mid;
        }
        if flo * fm < 0.0 {
            hi = mid;
        } else {
            lo = mid;
            flo = fm;
        }
    }
    0.5 * (lo + hi)
}

/// Newton's method with bisection fallback ("safeguarded Newton"): starts
/// from the bracket midpoint, falls back to bisection whenever the Newton
/// step leaves the bracket or the derivative vanishes. Robust for the
/// smooth monotone functions that arise here.
///
/// # Panics
/// If `f(lo)` and `f(hi)` have the same (nonzero) sign.
pub fn newton_bracketed(
    mut f: impl FnMut(f64) -> (f64, f64),
    mut lo: f64,
    mut hi: f64,
    tol: f64,
) -> f64 {
    let (flo, _) = f(lo);
    let (fhi, _) = f(hi);
    if flo == 0.0 {
        return lo;
    }
    if fhi == 0.0 {
        return hi;
    }
    assert!(
        flo * fhi < 0.0,
        "newton_bracketed requires a sign change on [{lo}, {hi}]"
    );
    let increasing = fhi > 0.0;
    let mut x = 0.5 * (lo + hi);
    for _ in 0..100 {
        let (fx, dfx) = f(x);
        if fx == 0.0 {
            return x;
        }
        // Maintain the bracket.
        if (fx > 0.0) == increasing {
            hi = x;
        } else {
            lo = x;
        }
        let newton = if dfx != 0.0 { x - fx / dfx } else { f64::NAN };
        x = if newton.is_finite() && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
        if (hi - lo) < tol * (1.0 + x.abs()) {
            return x;
        }
    }
    x
}

/// Golden-section minimization of a unimodal `f` on `[lo, hi]`.
/// Returns the minimizing abscissa.
pub fn golden_min(mut f: impl FnMut(f64) -> f64, mut lo: f64, mut hi: f64, tol: f64) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_8; // (√5 − 1)/2
    let mut a = hi - INV_PHI * (hi - lo);
    let mut b = lo + INV_PHI * (hi - lo);
    let mut fa = f(a);
    let mut fb = f(b);
    for _ in 0..300 {
        if (hi - lo) < tol * (1.0 + lo.abs().max(hi.abs())) {
            break;
        }
        if fa <= fb {
            hi = b;
            b = a;
            fb = fa;
            a = hi - INV_PHI * (hi - lo);
            fa = f(a);
        } else {
            lo = a;
            a = b;
            fa = fb;
            b = lo + INV_PHI * (hi - lo);
            fb = f(b);
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, TOL);
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_accepts_root_at_endpoint() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, TOL), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, TOL), 1.0);
    }

    #[test]
    #[should_panic(expected = "sign change")]
    fn bisect_rejects_same_sign() {
        let _ = bisect(|x| x * x + 1.0, -1.0, 1.0, TOL);
    }

    #[test]
    fn newton_matches_bisection_on_cubic() {
        let f = |x: f64| (x * x * x - 8.0, 3.0 * x * x);
        let r = newton_bracketed(f, 0.0, 10.0, TOL);
        assert!((r - 2.0).abs() < 1e-10);
    }

    #[test]
    fn newton_handles_decreasing_functions() {
        let f = |x: f64| (8.0 - x * x * x, -3.0 * x * x);
        let r = newton_bracketed(f, 0.0, 10.0, TOL);
        assert!((r - 2.0).abs() < 1e-10);
    }

    #[test]
    fn newton_survives_zero_derivative_start() {
        // f'(5) = 0 for f = (x−5)³ + 1 … derivative vanishes at the
        // midpoint start; the bisection fallback must kick in.
        let f = |x: f64| {
            let d = x - 5.0;
            (d * d * d + 1.0, 3.0 * d * d)
        };
        let r = newton_bracketed(f, 0.0, 10.0, TOL);
        assert!((r - 4.0).abs() < 1e-8);
    }

    #[test]
    fn golden_finds_parabola_minimum() {
        // Derivative-free minimization can only locate a quadratic minimum
        // to ~√ε_machine ≈ 1e-8; test at 1e-6 for headroom.
        let r = golden_min(|x| (x - 3.2) * (x - 3.2) + 1.0, -10.0, 10.0, 1e-12);
        assert!((r - 3.2).abs() < 1e-6);
    }

    #[test]
    fn golden_finds_energy_per_work_minimum() {
        // p(f)/f = f^2 + 0.25/f has its minimum at f_crit = 0.5.
        let r = golden_min(|f: f64| f * f + 0.25 / f, 1e-3, 10.0, 1e-12);
        assert!((r - 0.5).abs() < 1e-6);
    }

    #[test]
    fn golden_handles_boundary_minimum() {
        let r = golden_min(|x| x, 2.0, 5.0, 1e-12);
        assert!((r - 2.0).abs() < 1e-6);
    }
}
