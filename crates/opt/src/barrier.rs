//! Primal log-barrier interior-point solver — the method the paper
//! actually names ("the Interior Point method [9]") when discussing how
//! the reformulated convex program would be solved optimally.
//!
//! Minimizes `Φ_μ(x) = E(x) + μ·B(x)` over strictly feasible `x`, where
//! the barrier covers the box (`0 < x_k < Δ_{j(k)}`) and the per-
//! subinterval capacity slacks (`s_j = m·Δ_j − Σ_{k∈j} x_k > 0`), with
//! `μ` driven to zero on a geometric schedule.
//!
//! The Newton system exploits the program's structure. The Hessian is
//!
//! ```text
//! H = D + Σ_i σ_i·u_i u_iᵀ + Σ_j ρ_j·a_j a_jᵀ
//! ```
//!
//! with `D` diagonal (box-barrier curvature), `u_i` the indicator of task
//! `i`'s variables (the objective couples a task's variables only through
//! their sum), and `a_j` the indicator of subinterval `j`'s variables
//! (capacity barrier). The Woodbury identity reduces each Newton solve to
//! a dense `(n + N)`-dimensional system ([`crate::linalg`]), so a step
//! costs `O(dim + (n+N)³)` instead of `O(dim³)` — the structure-aware IP
//! iteration the complexity discussion in the paper alludes to.

// Indexed loops below walk several parallel arrays at once; iterator
// zips would obscure the numerics. Silence clippy's range-loop lint here.
#![allow(clippy::needless_range_loop)]

use crate::energy_program::EnergyProgram;
use crate::linalg::{lu_solve, Matrix};
use crate::solver::{SolveOptions, SolveResult, SolverTelemetry};
use esched_obs::{event, span, Level};
use std::time::Instant;

/// Fraction-to-boundary rule: never step past 99.5% of the way to any
/// constraint.
const FRAC_TO_BOUNDARY: f64 = 0.995;

/// Internal view of the program structure the barrier method needs.
struct Structure {
    dim: usize,
    n_tasks: usize,
    n_subs: usize,
    /// Task index of each variable.
    task_of: Vec<usize>,
    /// Subinterval index of each variable.
    sub_of: Vec<usize>,
    /// Δ of each variable's subinterval.
    delta_of: Vec<f64>,
    /// Capacity `m·Δ_j` of each subinterval.
    cap: Vec<f64>,
}

fn structure(ep: &EnergyProgram) -> Structure {
    let dim = ep.dim();
    let n_tasks = ep.task_count();
    let n_subs = ep.subinterval_count();
    let mut task_of = vec![0usize; dim];
    let mut sub_of = vec![0usize; dim];
    let mut delta_of = vec![0.0; dim];
    let mut cap = vec![0.0; n_subs];
    for i in 0..n_tasks {
        for j in 0..n_subs {
            if let Some(k) = ep.flat_index(i, j) {
                task_of[k] = i;
                sub_of[k] = j;
            }
        }
    }
    for j in 0..n_subs {
        cap[j] = ep.capacity(j);
    }
    for k in 0..dim {
        delta_of[k] = ep.delta_of_sub(sub_of[k]);
    }
    Structure {
        dim,
        n_tasks,
        n_subs,
        task_of,
        sub_of,
        delta_of,
        cap,
    }
}

/// Barrier value `B(x)`; `+∞` when any constraint is not strictly
/// satisfied.
fn barrier_value(st: &Structure, x: &[f64]) -> f64 {
    let mut b = 0.0;
    let mut slack = st.cap.clone();
    for k in 0..st.dim {
        if x[k] <= 0.0 || x[k] >= st.delta_of[k] {
            return f64::INFINITY;
        }
        b -= x[k].ln() + (st.delta_of[k] - x[k]).ln();
        slack[st.sub_of[k]] -= x[k];
    }
    for &s in &slack {
        if s <= 0.0 {
            return f64::INFINITY;
        }
        b -= s.ln();
    }
    b
}

/// One Newton step of `Φ_μ` at strictly feasible `x`. Returns the descent
/// direction, or `None` when the reduced system is singular.
fn newton_direction(ep: &EnergyProgram, st: &Structure, x: &[f64], mu: f64) -> Option<Vec<f64>> {
    let dim = st.dim;
    // Slacks per subinterval.
    let mut slack = st.cap.clone();
    for k in 0..dim {
        slack[st.sub_of[k]] -= x[k];
    }
    // Objective pieces.
    let mut g = vec![0.0; dim];
    ep.gradient(x, &mut g);
    let totals = ep.total_times(x);
    // σ_i = ∂²E/∂x∂x within task i's block.
    let (gamma, alpha, _) = ep.power_parameters();
    let sigmas: Vec<f64> = (0..st.n_tasks)
        .map(|i| {
            let c = ep.work_of_task(i);
            let xi = totals[i].max(1e-12);
            gamma * alpha * (alpha - 1.0) * c.powf(alpha) / xi.powf(alpha + 1.0)
        })
        .collect();
    let rhos: Vec<f64> = slack.iter().map(|&s| mu / (s * s)).collect();

    // Full gradient of Φ_μ and diagonal D.
    let mut grad = vec![0.0; dim];
    let mut d = vec![0.0; dim];
    for k in 0..dim {
        let up = st.delta_of[k] - x[k];
        grad[k] = g[k] - mu / x[k] + mu / up + mu / slack[st.sub_of[k]];
        d[k] = mu / (x[k] * x[k]) + mu / (up * up);
        // Guard against a zero diagonal when μ is tiny: the objective
        // block curvature keeps H PD, but D must be invertible for the
        // Woodbury split; add a floor.
        d[k] = d[k].max(1e-12);
    }

    // Woodbury: H = D + Σσ_i u u^T + Σρ_j a a^T.
    // M = C^{-1} + W^T D^{-1} W, with columns ordered tasks then subs.
    let r = st.n_tasks + st.n_subs;
    let mut m = Matrix::zeros(r, r);
    for (i, &s) in sigmas.iter().enumerate() {
        m[(i, i)] = if s > 1e-300 { 1.0 / s } else { 1e300 };
    }
    for (j, &rho) in rhos.iter().enumerate() {
        let jj = st.n_tasks + j;
        m[(jj, jj)] = if rho > 1e-300 { 1.0 / rho } else { 1e300 };
    }
    // W^T D^{-1} W contributions.
    for k in 0..dim {
        let ti = st.task_of[k];
        let sj = st.n_tasks + st.sub_of[k];
        let dinv = 1.0 / d[k];
        m[(ti, ti)] += dinv;
        m[(sj, sj)] += dinv;
        m[(ti, sj)] += dinv;
        m[(sj, ti)] += dinv;
    }
    // Right-hand side: W^T D^{-1} grad.
    let mut wt = vec![0.0; r];
    for k in 0..dim {
        let dinv_g = grad[k] / d[k];
        wt[st.task_of[k]] += dinv_g;
        wt[st.n_tasks + st.sub_of[k]] += dinv_g;
    }
    let z = lu_solve(&m, &wt)?;
    // d = −H^{-1} grad = −(D^{-1}grad − D^{-1} W z).
    let mut dir = vec![0.0; dim];
    for k in 0..dim {
        let corr = z[st.task_of[k]] + z[st.n_tasks + st.sub_of[k]];
        dir[k] = -(grad[k] - corr) / d[k];
    }
    Some(dir)
}

/// Largest step along `dir` keeping every constraint strictly satisfied,
/// scaled by the fraction-to-boundary rule.
fn max_step(st: &Structure, x: &[f64], dir: &[f64]) -> f64 {
    let mut step = 1.0_f64;
    let mut slack = st.cap.clone();
    let mut dslack = vec![0.0; st.n_subs];
    for k in 0..st.dim {
        slack[st.sub_of[k]] -= x[k];
        dslack[st.sub_of[k]] += dir[k];
        if dir[k] < 0.0 {
            step = step.min(-x[k] / dir[k]);
        } else if dir[k] > 0.0 {
            step = step.min((st.delta_of[k] - x[k]) / dir[k]);
        }
    }
    for j in 0..st.n_subs {
        if dslack[j] > 0.0 {
            step = step.min(slack[j] / dslack[j]);
        }
    }
    step * FRAC_TO_BOUNDARY
}

/// Solve the energy program with the primal log-barrier method from the
/// program's canonical interior start.
pub fn solve_barrier(ep: &EnergyProgram, opts: &SolveOptions) -> SolveResult {
    let st = structure(ep);
    let dim = st.dim;
    let _span = span!(
        Level::Debug,
        "solve_barrier",
        dim = dim,
        n_tasks = st.n_tasks,
        n_subintervals = st.n_subs,
    );
    let t_start = Instant::now();
    let mut backtracks = 0usize;

    // Strictly interior start: 90% of the even-share point.
    let mut x: Vec<f64> = ep
        .initial_point()
        .iter()
        .map(|&v| 0.9 * v.max(1e-9))
        .collect();
    debug_assert!(barrier_value(&st, &x).is_finite(), "start not interior");

    // μ schedule: start so the barrier term is comparable to the
    // objective, shrink geometrically.
    let n_constraints = (2 * dim + st.n_subs) as f64;
    let mut mu = (ep.objective(&x).abs() / n_constraints).max(1e-6);
    let mut iters = 0usize;
    let mut converged = false;
    let mut iter_trace = opts.trace_iters.then(Vec::new);

    'outer: for _ in 0..60 {
        // Inner Newton loop for the current μ.
        for _ in 0..50 {
            iters += 1;
            if iters >= opts.max_iters {
                break 'outer;
            }
            let Some(dir) = newton_direction(ep, &st, &x, mu) else {
                break;
            };
            let norm2: f64 = dir.iter().map(|v| v * v).sum();
            if norm2.sqrt() < 1e-12 * (1.0 + mu) {
                break;
            }
            let mut step = max_step(&st, &x, &dir);
            // Armijo backtracking on Φ_μ.
            let phi0 = ep.objective(&x) + mu * barrier_value(&st, &x);
            let mut accepted = false;
            for _ in 0..40 {
                let trial: Vec<f64> = x.iter().zip(&dir).map(|(a, b)| a + step * b).collect();
                let phi = ep.objective(&trial) + mu * barrier_value(&st, &trial);
                if phi < phi0 - 1e-12 * phi0.abs() {
                    x = trial;
                    accepted = true;
                    break;
                }
                step *= 0.5;
                backtracks += 1;
                if step < 1e-16 {
                    break;
                }
            }
            if !accepted {
                break; // Newton converged for this μ
            }
            if let Some(trace) = iter_trace.as_mut() {
                // The barrier's certifiable bound at this point is the
                // duality bound m·μ, which is what the outer loop tests.
                trace.push(crate::solver::IterSample {
                    iter: iters,
                    objective: ep.objective(&x),
                    gap: n_constraints * mu,
                    step,
                });
            }
        }
        // Outer stopping: the barrier duality bound m_constraints·μ.
        if n_constraints * mu < opts.gap_tol * (1.0 + ep.objective(&x).abs()) {
            converged = true;
            break;
        }
        mu *= 0.2;
    }

    let objective = ep.objective(&x);
    let gap = ep.duality_gap(&x);
    if !converged {
        event!(
            Level::Warn,
            "barrier hit iteration cap",
            iters = iters,
            gap = gap
        );
    }
    let telemetry = SolverTelemetry {
        iters,
        stalls: 0,
        gap_evals: 1,
        backtracks,
        wall_s: t_start.elapsed().as_secs_f64(),
        final_gap: gap,
        converged,
    };
    telemetry.publish("barrier");
    event!(
        Level::Debug,
        "barrier done",
        newton_steps = iters,
        backtracks = backtracks,
        gap = gap,
        converged = converged,
    );
    SolveResult {
        x,
        objective,
        gap,
        iters,
        converged,
        telemetry,
        iter_trace,
        dual: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::solve_pgd;
    use esched_subinterval::Timeline;
    use esched_types::{PolynomialPower, TaskSet};

    fn program(tasks: &TaskSet, cores: usize, alpha: f64, p0: f64) -> EnergyProgram {
        let tl = Timeline::build(tasks);
        EnergyProgram::new(tasks, &tl, cores, PolynomialPower::paper(alpha, p0))
    }

    fn intro() -> TaskSet {
        TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)])
    }

    fn vd() -> TaskSet {
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    #[test]
    fn barrier_solves_section_ii_example() {
        let ep = program(&intro(), 2, 3.0, 0.01);
        let r = solve_barrier(&ep, &SolveOptions::precise());
        let expect = 155.0 / 32.0 + 0.2;
        assert!(
            (r.objective - expect).abs() < 1e-4 * expect,
            "barrier objective {} vs {}",
            r.objective,
            expect
        );
        assert!(ep.is_feasible(&r.x, 1e-9), "iterate left the polytope");
    }

    #[test]
    fn barrier_matches_pgd_across_settings() {
        for (alpha, p0, cores) in [(3.0, 0.0, 4), (2.0, 0.2, 2), (2.5, 0.1, 4)] {
            let ep = program(&vd(), cores, alpha, p0);
            let b = solve_barrier(&ep, &SolveOptions::default());
            let p = solve_pgd(&ep, ep.initial_point(), &SolveOptions::default());
            assert!(
                (b.objective - p.objective).abs() < 2e-3 * (1.0 + p.objective),
                "alpha={alpha} p0={p0}: barrier {} vs pgd {}",
                b.objective,
                p.objective
            );
        }
    }

    #[test]
    fn barrier_iterates_stay_strictly_interior_at_the_end() {
        let ep = program(&vd(), 4, 3.0, 0.1);
        let st = structure(&ep);
        let r = solve_barrier(&ep, &SolveOptions::default());
        assert!(barrier_value(&st, &r.x).is_finite());
    }

    #[test]
    fn barrier_certifies_small_gap() {
        let ep = program(&intro(), 2, 3.0, 0.05);
        let r = solve_barrier(&ep, &SolveOptions::default());
        assert!(
            r.gap <= 1e-3 * (1.0 + r.objective),
            "gap {} too large",
            r.gap
        );
    }
}
