//! Shared solver options and result types for the energy-program solvers,
//! plus [`SolverKind`] — the by-value handle that dispatches to the six
//! entry points so callers can pick a solver without function pointers.

use crate::energy_program::EnergyProgram;
use esched_obs::pool::Pool;

/// Options shared by all first-order solvers.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOptions {
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Stop when the certified duality gap falls below
    /// `gap_tol · (1 + |E(x)|)`.
    pub gap_tol: f64,
    /// Additional stop: relative objective decrease below this for
    /// `stall_iters` consecutive iterations.
    pub rel_tol: f64,
    /// Consecutive stalled iterations before declaring convergence on
    /// `rel_tol`.
    pub stall_iters: usize,
    /// How often (in iterations) to evaluate the duality gap; the gap costs
    /// a gradient + LMO, so checking every iteration is wasteful.
    pub gap_check_every: usize,
    /// Optional starting iterate for the warm-startable solvers (PGD,
    /// FISTA, Frank–Wolfe, block descent). Validated against the program's
    /// dimension and projected onto the feasible set before use; a
    /// mismatched or absent warm start falls back to
    /// [`EnergyProgram::initial_point`]. The barrier solver ignores it
    /// (its central-path start must be strictly interior).
    pub warm_start: Option<Vec<f64>>,
    /// Optional starting dual point (per-variable multipliers, length
    /// [`EnergyProgram::dim`]) for solvers that maintain one — currently
    /// only ADMM, whose consensus prices converge along with the primal
    /// iterate. Validated for dimension and finiteness; ignored (never an
    /// error) by solvers without dual state or on mismatch, so it is safe
    /// to carry a stale dual across online replans. Filled from
    /// [`SolveResult::dual`] of the previous solve.
    pub warm_start_dual: Option<Vec<f64>>,
    /// Record one [`IterSample`] per iteration into
    /// [`SolveResult::iter_trace`]. Off by default: the trace allocates
    /// (one small struct per iteration), so it is an opt-in diagnostic
    /// for convergence studies, not hot-path telemetry. Rendered as
    /// Chrome counter tracks by `esched_obs::chrome::convergence_trace`.
    pub trace_iters: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            max_iters: 20_000,
            gap_tol: 1e-7,
            rel_tol: 1e-12,
            stall_iters: 25,
            gap_check_every: 10,
            warm_start: None,
            warm_start_dual: None,
            trace_iters: false,
        }
    }
}

impl SolveOptions {
    /// A faster, looser preset for Monte-Carlo experiment baselines where
    /// 1e-4-relative accuracy on `E^OPT` is ample.
    pub fn fast() -> Self {
        Self {
            max_iters: 5_000,
            gap_tol: 1e-5,
            rel_tol: 1e-10,
            stall_iters: 15,
            gap_check_every: 10,
            warm_start: None,
            warm_start_dual: None,
            trace_iters: false,
        }
    }

    /// A tight preset for golden-value tests.
    pub fn precise() -> Self {
        Self {
            max_iters: 200_000,
            gap_tol: 1e-10,
            rel_tol: 1e-15,
            stall_iters: 50,
            gap_check_every: 20,
            warm_start: None,
            warm_start_dual: None,
            trace_iters: false,
        }
    }

    /// Builder-style warm start.
    pub fn with_warm_start(mut self, x0: Vec<f64>) -> Self {
        self.warm_start = Some(x0);
        self
    }

    /// Builder-style dual warm start (see
    /// [`SolveOptions::warm_start_dual`]).
    pub fn with_warm_start_dual(mut self, y0: Vec<f64>) -> Self {
        self.warm_start_dual = Some(y0);
        self
    }

    /// Builder-style per-iteration trace toggle.
    pub fn with_trace_iters(mut self, on: bool) -> Self {
        self.trace_iters = on;
        self
    }

    /// The validated, projected warm-start point for `ep`, if one is set
    /// and dimension-compatible. Projection makes any finite guess usable:
    /// stale coordinates from a neighboring instance are clamped back into
    /// `0 ≤ x ≤ Δ_j` and the per-subinterval capacity simplex.
    pub fn warm_point(&self, ep: &EnergyProgram) -> Option<Vec<f64>> {
        let guess = self.warm_start.as_ref()?;
        if guess.len() != ep.dim() || guess.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let mut out = vec![0.0; ep.dim()];
        ep.project(guess, &mut out);
        debug_assert!(ep.is_feasible(&out, 1e-6));
        Some(out)
    }

    /// The validated dual warm start for `ep`, if one is set and
    /// dimension-compatible with all-finite entries. Unlike
    /// [`SolveOptions::warm_point`] there is no projection — duals are
    /// unconstrained — but a mismatched or non-finite vector is silently
    /// dropped so stale duals can never poison a solve.
    pub fn warm_duals(&self, ep: &EnergyProgram) -> Option<&[f64]> {
        let duals = self.warm_start_dual.as_ref()?;
        if duals.len() != ep.dim() || duals.iter().any(|v| !v.is_finite()) {
            return None;
        }
        Some(duals)
    }
}

/// Guard a caller-supplied starting point for the direct solver entry
/// points. A resized vector (the task set mutated between solves — online
/// arrivals change `dim`), a non-finite coordinate, or an infeasible
/// point is replaced by [`EnergyProgram::initial_point`] or re-projected
/// instead of tripping the solvers' internal asserts. A valid feasible
/// point passes through untouched, keeping cold-start paths bit-identical
/// to before.
pub(crate) fn sanitize_start(ep: &EnergyProgram, x0: Vec<f64>) -> Vec<f64> {
    if x0.len() != ep.dim() || x0.iter().any(|v| !v.is_finite()) {
        return ep.initial_point();
    }
    if ep.is_feasible(&x0, 1e-6) {
        return x0;
    }
    let mut out = vec![0.0; x0.len()];
    ep.project(&x0, &mut out);
    out
}

/// Which method solves the energy program.
///
/// The six free functions ([`crate::solve_pgd`], [`crate::solve_fista`],
/// [`crate::solve_frank_wolfe`], [`crate::solve_barrier`],
/// [`crate::solve_block_descent`], [`crate::solve_admm`]) remain the
/// low-level entry points; [`SolverKind::solve`] dispatches to them so
/// configuration surfaces (`EngineConfig`, the solver study, CLI flags)
/// can select a solver by value instead of threading function pointers
/// and adapters around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Projected gradient descent with backtracking (default).
    #[default]
    ProjectedGradient,
    /// FISTA with adaptive restart.
    Fista,
    /// Frank–Wolfe with golden-section line search.
    FrankWolfe,
    /// Primal log-barrier interior point (the paper's named method).
    InteriorPoint,
    /// Gauss–Seidel block-coordinate descent with exact waterfilling
    /// block solves.
    BlockDescent,
    /// Consensus ADMM: per-task subproblems solved exactly (bisection on
    /// the task's share total) and fanned across the shared worker pool,
    /// coordinated by per-subinterval prices with an over-relaxed update.
    /// The only parallel solver, and the only one with dual state —
    /// [`SolveResult::dual`] is `Some` and
    /// [`SolveOptions::warm_start_dual`] is honored.
    Admm,
}

impl SolverKind {
    /// All six kinds, in study order.
    pub const ALL: [SolverKind; 6] = [
        SolverKind::ProjectedGradient,
        SolverKind::Fista,
        SolverKind::FrankWolfe,
        SolverKind::InteriorPoint,
        SolverKind::BlockDescent,
        SolverKind::Admm,
    ];

    /// Solve `ep` with this method. First-order methods and block descent
    /// start from [`SolveOptions::warm_start`] when it is set (validated
    /// and projected), otherwise from [`EnergyProgram::initial_point`];
    /// the barrier solver always chooses its own interior starting point.
    pub fn solve(&self, ep: &EnergyProgram, opts: &SolveOptions) -> SolveResult {
        // A fresh env-sized pool per solve: the pool struct is one usize
        // (threads spawn per batch call), so this is free, and it keeps
        // `ESCHED_ENGINE_THREADS` live-reconfigurable between solves.
        self.solve_in(ep, opts, &Pool::new())
    }

    /// Like [`SolverKind::solve`], but ADMM fans its per-task subproblems
    /// across the supplied `pool` instead of an env-sized one. The serial
    /// solvers ignore `pool`. Results are byte-identical at any worker
    /// count, so pool choice is purely a throughput knob.
    pub fn solve_in(&self, ep: &EnergyProgram, opts: &SolveOptions, pool: &Pool) -> SolveResult {
        let start = |ep: &EnergyProgram| {
            if let Some(x0) = opts.warm_point(ep) {
                esched_obs::metric_counter!("esched.opt.warm_starts").inc();
                x0
            } else {
                ep.initial_point()
            }
        };
        match self {
            SolverKind::ProjectedGradient => crate::gradient::solve_pgd(ep, start(ep), opts),
            SolverKind::Fista => crate::fista::solve_fista(ep, start(ep), opts),
            SolverKind::FrankWolfe => crate::frank_wolfe::solve_frank_wolfe(ep, start(ep), opts),
            SolverKind::InteriorPoint => crate::barrier::solve_barrier(ep, opts),
            SolverKind::BlockDescent => {
                crate::block_descent::solve_block_descent_from(ep, start(ep), opts)
            }
            SolverKind::Admm => crate::admm::solve_admm_in(ep, opts, pool),
        }
    }

    /// Short stable name, matching the solver-study and report labels.
    pub fn name(&self) -> &'static str {
        match self {
            SolverKind::ProjectedGradient => "pgd",
            SolverKind::Fista => "fista",
            SolverKind::FrankWolfe => "frank_wolfe",
            SolverKind::InteriorPoint => "interior_point",
            SolverKind::BlockDescent => "block_descent",
            SolverKind::Admm => "admm",
        }
    }

    /// Inverse of [`SolverKind::name`] (`None` for unknown names).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Counters and timings every solver collects while it runs.
///
/// Collection is unconditional — it is a handful of integer increments and
/// one `Instant` pair per solve, far below measurement noise — so the
/// telemetry is always present on [`SolveResult`] regardless of whether
/// tracing is enabled. The experiments harness aggregates these into the
/// per-run report (`esched_obs::report::RunReport`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolverTelemetry {
    /// Iterations executed (sweeps for block descent, Newton steps for the
    /// barrier method). Mirrors [`SolveResult::iters`].
    pub iters: usize,
    /// Total iterations whose relative objective decrease fell below
    /// `rel_tol` (the stall counter's increments, summed over the run).
    pub stalls: usize,
    /// Duality-gap evaluations. Each costs a gradient plus an LMO sweep,
    /// which is why [`SolveOptions::gap_check_every`] exists.
    pub gap_evals: usize,
    /// Line-search step halvings across the whole run (backtracking and
    /// Armijo searches; zero for solvers without one).
    pub backtracks: usize,
    /// Wall-clock duration of the solve, in seconds.
    pub wall_s: f64,
    /// Certified duality gap at exit. Mirrors [`SolveResult::gap`].
    pub final_gap: f64,
    /// Whether a stopping criterion (not the iteration cap) fired.
    /// Mirrors [`SolveResult::converged`].
    pub converged: bool,
}

impl SolverTelemetry {
    /// Mirror this solve's counters into the process-global metrics
    /// registry (`esched_obs::metrics`).
    ///
    /// Every solver calls this once, right after constructing its
    /// telemetry, so workspace-wide instruments accumulate across solves
    /// without changing the per-solve [`SolveResult`] shape:
    ///
    /// - `esched.opt.solves` / `esched.opt.solves.<solver>` — solve counts,
    /// - `esched.opt.iters`, `esched.opt.gap_evals`,
    ///   `esched.opt.backtracks`, `esched.opt.stalls` — summed counters,
    /// - `esched.opt.cap_hits` — solves that exhausted the iteration cap,
    /// - `esched.opt.solve_wall_ns` — per-solve wall time histogram.
    ///
    /// `solver` is a short stable name (`"pgd"`, `"fista"`,
    /// `"frank_wolfe"`, `"barrier"`, `"block_descent"`).
    pub fn publish(&self, solver: &str) {
        use esched_obs::{metric_counter, metric_histogram, metrics};
        metric_counter!("esched.opt.solves").inc();
        metrics::counter(&format!("esched.opt.solves.{solver}")).inc();
        metric_counter!("esched.opt.iters").add(self.iters as u64);
        metric_counter!("esched.opt.gap_evals").add(self.gap_evals as u64);
        metric_counter!("esched.opt.backtracks").add(self.backtracks as u64);
        metric_counter!("esched.opt.stalls").add(self.stalls as u64);
        if !self.converged {
            metric_counter!("esched.opt.cap_hits").inc();
        }
        metric_histogram!("esched.opt.solve_wall_ns").record((self.wall_s * 1e9) as u64);
    }
}

/// One per-iteration convergence sample, recorded when
/// [`SolveOptions::trace_iters`] is on.
///
/// All six solvers emit the same shape; `step` is the solver's own
/// step-quality scalar — accepted step size for PGD/FISTA, the line-search
/// `γ` for Frank–Wolfe, the Armijo step for the barrier's Newton steps,
/// the per-sweep objective decrease for block descent, and the primal
/// residual norm for ADMM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterSample {
    /// 1-based iteration number (sweep / Newton step for the non-first-
    /// order methods).
    pub iter: usize,
    /// Objective value after the iteration.
    pub objective: f64,
    /// Last known certified duality gap (`inf` until the first gap check;
    /// Frank–Wolfe updates it every iteration for free).
    pub gap: f64,
    /// Solver-specific step scalar (see type docs).
    pub step: f64,
}

/// Outcome of a solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// The final (feasible) iterate.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Certified duality gap at `x` (upper bound on suboptimality).
    pub gap: f64,
    /// Iterations used.
    pub iters: usize,
    /// Whether a stopping criterion (not the iteration cap) fired.
    pub converged: bool,
    /// Counters and wall time collected during the solve.
    pub telemetry: SolverTelemetry,
    /// Per-iteration convergence samples — present iff
    /// [`SolveOptions::trace_iters`] was set.
    pub iter_trace: Option<Vec<IterSample>>,
    /// Final dual point (per-variable consensus multipliers, unscaled by
    /// the penalty so a future solve can adopt them under any `ρ`). `Some`
    /// only for solvers with dual state — currently ADMM. Feed it back via
    /// [`SolveOptions::with_warm_start_dual`] to warm-start the prices on
    /// a re-solve.
    pub dual: Option<Vec<f64>>,
}
