//! Minimal dense linear algebra: LU factorization with partial pivoting
//! and triangular solves — just enough to back the interior-point
//! method's Woodbury-reduced Newton systems (tens of unknowns), with no
//! external dependency.

// Indexed loops below walk several parallel arrays at once; iterator
// zips would obscure the numerics. Silence clippy's range-loop lint here.
#![allow(clippy::needless_range_loop)]

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for k in 0..n {
            m[(k, k)] = 1.0;
        }
        m
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            out[r] = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Solve `A x = b` by LU with partial pivoting. Returns `None` when the
/// matrix is numerically singular.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows, a.cols);
    assert_eq!(b.len(), a.rows);
    let n = a.rows;
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();

    for k in 0..n {
        // Pivot.
        let (pivot_row, pivot_val) = (k..n)
            .map(|r| (r, lu[(r, k)].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
            .expect("non-empty range");
        if pivot_val < 1e-300 {
            return None;
        }
        if pivot_row != k {
            for c in 0..n {
                let tmp = lu[(k, c)];
                lu[(k, c)] = lu[(pivot_row, c)];
                lu[(pivot_row, c)] = tmp;
            }
            perm.swap(k, pivot_row);
        }
        // Eliminate below.
        for r in (k + 1)..n {
            let factor = lu[(r, k)] / lu[(k, k)];
            lu[(r, k)] = factor;
            for c in (k + 1)..n {
                let sub = factor * lu[(k, c)];
                lu[(r, c)] -= sub;
            }
        }
    }

    // Forward substitution with permuted b.
    let mut y = vec![0.0; n];
    for r in 0..n {
        let mut s = b[perm[r]];
        for c in 0..r {
            s -= lu[(r, c)] * y[c];
        }
        y[r] = s;
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut s = y[r];
        for c in (r + 1)..n {
            s -= lu[(r, c)] * x[c];
        }
        x[r] = s / lu[(r, r)];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_trivially() {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(lu_solve(&a, &b).unwrap(), b);
    }

    #[test]
    fn known_3x3_system() {
        // A = [[2,1,1],[1,3,2],[1,0,0]], b = [4,5,6] → x = [6,15,-23].
        let mut a = Matrix::zeros(3, 3);
        let vals = [[2.0, 1.0, 1.0], [1.0, 3.0, 2.0], [1.0, 0.0, 0.0]];
        for r in 0..3 {
            for c in 0..3 {
                a[(r, c)] = vals[r][c];
            }
        }
        let x = lu_solve(&a, &[4.0, 5.0, 6.0]).unwrap();
        let expect = [6.0, 15.0, -23.0];
        for (got, want) in x.iter().zip(expect) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn residual_is_tiny_on_random_like_systems() {
        // Deterministic pseudo-random matrix; check ‖Ax − b‖ ≈ 0.
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a[(r, c)] = ((r * 31 + c * 17 + 7) % 23) as f64 / 7.0 - 1.5;
            }
            a[(r, r)] += 5.0; // diagonal dominance for conditioning
        }
        let b: Vec<f64> = (0..n).map(|k| (k as f64 * 0.7).sin()).collect();
        let x = lu_solve(&a, &b).unwrap();
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-9);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let x = lu_solve(&a, &[3.0, 4.0]).unwrap();
        assert!((x[0] - 4.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        assert!(lu_solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn matvec_matches_manual() {
        let mut a = Matrix::zeros(2, 3);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(0, 2)] = 3.0;
        a[(1, 0)] = 4.0;
        a[(1, 1)] = 5.0;
        a[(1, 2)] = 6.0;
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }
}
