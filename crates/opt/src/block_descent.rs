//! Block-coordinate descent over subintervals with *exact* block solves.
//!
//! The energy program's constraints decompose per subinterval, and its
//! objective couples a task's variables only through the total `X_i`.
//! Fixing every block except subinterval `j`, the block subproblem is
//!
//! ```text
//! min Σ_{i∈j} [ γ·C_i^α/(r_i + x_i)^{α−1} + p₀·(r_i + x_i) ]
//! s.t. 0 ≤ x_i ≤ Δ_j,  Σ_i x_i ≤ m·Δ_j
//! ```
//!
//! where `r_i` is task `i`'s execution time outside block `j`. The KKT
//! conditions give a **closed form** per task as a function of the budget
//! multiplier `λ`:
//!
//! ```text
//! x_i(λ) = clamp( C_i · (γ(α−1)/(p₀+λ))^{1/α} − r_i, 0, Δ_j )
//! ```
//!
//! — a classic waterfilling: one scalar bisection on `λ` solves the whole
//! block exactly. Gauss–Seidel sweeps over blocks then decrease the
//! objective monotonically to the global optimum (the objective is convex
//! and smooth where it matters, and blocks overlap only through the
//! separable totals).
//!
//! This is the fifth independent solver in the suite; it needs no step
//! sizes, no projections, and no line searches.

use crate::energy_program::EnergyProgram;
use crate::scalar::bisect;
use crate::solver::{SolveOptions, SolveResult, SolverTelemetry};
use esched_obs::{event, span, Level};
use std::time::Instant;

/// The closed-form unconstrained block response for one task.
fn response(c: f64, r: f64, gamma: f64, alpha: f64, p0_plus_lambda: f64) -> f64 {
    if p0_plus_lambda <= 0.0 {
        return f64::INFINITY; // zero marginal cost of time: stretch fully
    }
    c * (gamma * (alpha - 1.0) / p0_plus_lambda).powf(1.0 / alpha) - r
}

/// Solve one block exactly. `rest[i]` is the task's time outside the
/// block; `works[i]` its `C_i`. Returns the new block values.
fn solve_block(
    works: &[f64],
    rest: &[f64],
    delta: f64,
    capacity: f64,
    gamma: f64,
    alpha: f64,
    p0: f64,
) -> Vec<f64> {
    let clamp_all = |lam: f64| -> Vec<f64> {
        works
            .iter()
            .zip(rest)
            .map(|(&c, &r)| response(c, r, gamma, alpha, p0 + lam).clamp(0.0, delta))
            .collect()
    };
    // λ = 0: if the unconstrained optimum fits, done.
    let x0 = clamp_all(0.0);
    let s0: f64 = x0.iter().sum();
    if s0 <= capacity {
        return x0;
    }
    // Otherwise bisect λ > 0 until the block budget binds. The sum is
    // continuous, decreasing in λ, and goes to ... as λ → ∞, every
    // response → −r_i < 0 → clamped 0, so a bracket always exists.
    let mut hi = 1.0_f64.max(p0);
    for _ in 0..200 {
        let s: f64 = clamp_all(hi).iter().sum();
        if s <= capacity {
            break;
        }
        hi *= 2.0;
    }
    let lam = bisect(
        |l| clamp_all(l).iter().sum::<f64>() - capacity,
        0.0,
        hi,
        1e-13,
    );
    clamp_all(lam)
}

/// Run Gauss–Seidel block-coordinate descent from the canonical interior
/// start.
pub fn solve_block_descent(ep: &EnergyProgram, opts: &SolveOptions) -> SolveResult {
    solve_block_descent_from(ep, ep.initial_point(), opts)
}

/// [`solve_block_descent`] from a caller-supplied feasible starting point
/// (the warm-start entry used by [`crate::SolverKind::solve`]).
pub fn solve_block_descent_from(
    ep: &EnergyProgram,
    x0: Vec<f64>,
    opts: &SolveOptions,
) -> SolveResult {
    let (gamma, alpha, p0) = ep.power_parameters();
    let n = ep.task_count();
    let nsub = ep.subinterval_count();
    let _span = span!(
        Level::Debug,
        "solve_block_descent",
        n_tasks = n,
        n_subintervals = nsub,
    );
    let t_start = Instant::now();

    let mut x = crate::solver::sanitize_start(ep, x0);
    let mut fx = ep.objective(&x);
    let mut iters = 0usize;
    let mut converged = false;
    let mut gap = f64::INFINITY;
    let mut stalled = 0usize;
    let mut stalls = 0usize;
    let mut gap_evals = 0usize;
    let mut iter_trace = opts.trace_iters.then(Vec::new);

    // Per-block member lists (task, flat index).
    let members: Vec<Vec<(usize, usize)>> = (0..nsub)
        .map(|j| {
            (0..n)
                .filter_map(|i| ep.flat_index(i, j).map(|k| (i, k)))
                .collect()
        })
        .collect();

    let max_sweeps = opts.max_iters.max(1);
    for sweep in 0..max_sweeps {
        iters = sweep + 1;
        let mut totals = ep.total_times(&x);
        for (j, mem) in members.iter().enumerate() {
            if mem.is_empty() {
                continue;
            }
            let delta = ep.delta_of_sub(j);
            let capacity = ep.capacity(j);
            let works: Vec<f64> = mem.iter().map(|&(i, _)| ep.work_of_task(i)).collect();
            let rest: Vec<f64> = mem
                .iter()
                .map(|&(i, k)| (totals[i] - x[k]).max(0.0))
                .collect();
            let new = solve_block(&works, &rest, delta, capacity, gamma, alpha, p0);
            for (&(i, k), &v) in mem.iter().zip(&new) {
                totals[i] += v - x[k];
                x[k] = v;
            }
        }
        let f_new = ep.objective(&x);
        let decrease = fx - f_new;
        fx = f_new;
        if let Some(trace) = iter_trace.as_mut() {
            trace.push(crate::solver::IterSample {
                iter: iters,
                objective: fx,
                gap,
                step: decrease,
            });
        }
        if decrease.abs() <= opts.rel_tol * (1.0 + fx.abs()) {
            stalled += 1;
            stalls += 1;
            if stalled >= 3 {
                converged = true;
                break;
            }
        } else {
            stalled = 0;
        }
        if (sweep + 1) % opts.gap_check_every.max(1) == 0 {
            gap = ep.duality_gap(&x);
            gap_evals += 1;
            if gap <= opts.gap_tol * (1.0 + fx.abs()) {
                converged = true;
                break;
            }
        }
    }

    if !gap.is_finite() || converged {
        gap = ep.duality_gap(&x);
        gap_evals += 1;
    }
    if !converged {
        event!(
            Level::Warn,
            "block descent hit sweep cap",
            sweeps = iters,
            gap = gap
        );
    }
    let telemetry = SolverTelemetry {
        iters,
        stalls,
        gap_evals,
        backtracks: 0,
        wall_s: t_start.elapsed().as_secs_f64(),
        final_gap: gap,
        converged,
    };
    telemetry.publish("block_descent");
    event!(
        Level::Debug,
        "block descent done",
        sweeps = iters,
        gap_evals = gap_evals,
        gap = gap,
        converged = converged,
    );
    SolveResult {
        x,
        objective: fx,
        gap,
        iters,
        converged,
        telemetry,
        iter_trace,
        dual: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::solve_pgd;
    use esched_subinterval::Timeline;
    use esched_types::{PolynomialPower, TaskSet};

    fn program(tasks: &TaskSet, cores: usize, alpha: f64, p0: f64) -> EnergyProgram {
        let tl = Timeline::build(tasks);
        EnergyProgram::new(tasks, &tl, cores, PolynomialPower::paper(alpha, p0))
    }

    fn intro() -> TaskSet {
        TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)])
    }

    fn vd() -> TaskSet {
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    #[test]
    fn block_descent_solves_section_ii_example() {
        let ep = program(&intro(), 2, 3.0, 0.01);
        let r = solve_block_descent(&ep, &SolveOptions::precise());
        let expect = 155.0 / 32.0 + 0.2;
        assert!(
            (r.objective - expect).abs() < 1e-5,
            "objective {} vs {}",
            r.objective,
            expect
        );
        assert!(ep.is_feasible(&r.x, 1e-7));
    }

    #[test]
    fn block_descent_matches_pgd() {
        for (alpha, p0, cores) in [(3.0, 0.0, 4), (2.0, 0.2, 2), (2.5, 0.1, 4)] {
            let ep = program(&vd(), cores, alpha, p0);
            let b = solve_block_descent(&ep, &SolveOptions::default());
            let p = solve_pgd(&ep, ep.initial_point(), &SolveOptions::default());
            assert!(
                (b.objective - p.objective).abs() < 1e-3 * (1.0 + p.objective),
                "alpha={alpha} p0={p0}: block {} vs pgd {}",
                b.objective,
                p.objective
            );
        }
    }

    #[test]
    fn block_solve_respects_the_budget_exactly_when_it_binds() {
        // Three tasks fighting over one core's 2-unit block.
        let x = solve_block(&[4.0, 2.0, 1.0], &[1.0, 1.0, 1.0], 2.0, 2.0, 1.0, 3.0, 0.0);
        let s: f64 = x.iter().sum();
        assert!((s - 2.0).abs() < 1e-7, "sum {s}");
        for &v in &x {
            assert!((0.0..=2.0 + 1e-9).contains(&v));
        }
        // The biggest task gets the biggest share.
        assert!(x[0] > x[1] && x[1] > x[2]);
    }

    #[test]
    fn block_solve_leaves_slack_when_static_power_is_high() {
        // One task, plenty of capacity, p0 so high the critical frequency
        // binds: the block should NOT use all available time.
        let x = solve_block(&[1.0], &[0.0], 10.0, 10.0, 1.0, 2.0, 1.0);
        // Closed form: x = C·(γ(α−1)/p0)^{1/α} = 1·(1/1)^{1/2} = 1.
        assert!((x[0] - 1.0).abs() < 1e-9, "{}", x[0]);
    }

    #[test]
    fn block_descent_converges_fast_on_paper_instances() {
        let ep = program(&vd(), 4, 3.0, 0.1);
        let r = solve_block_descent(&ep, &SolveOptions::default());
        assert!(r.converged);
        // Gauss–Seidel with exact block solves needs very few sweeps.
        assert!(r.iters < 500, "took {} sweeps", r.iters);
        assert!(r.gap <= 1e-5 * (1.0 + r.objective), "gap {}", r.gap);
    }
}
