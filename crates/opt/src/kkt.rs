//! KKT residual certification for the energy program.
//!
//! Theorem 1 rests on the reformulated problem being convex; a candidate
//! `x` is therefore globally optimal iff the KKT conditions hold. This
//! module measures how far a point is from satisfying them, giving the
//! test suite and the experiment harness an *independent* optimality
//! certificate that does not trust the solver that produced the point.
//!
//! For the program
//! `min E(x) s.t. 0 ≤ x_{i,j} ≤ Δ_j, Σ_i x_{i,j} ≤ m·Δ_j`,
//! stationarity requires, for each variable `k` in subinterval block `j`
//! (with `g = ∇E(x)` and block multiplier `μ_j ≥ 0`):
//!
//! * `x_k` interior (0 < x_k < Δ_j, block slack): `g_k = 0`
//! * interior but block tight: `g_k = −μ_j`
//! * `x_k = 0`: `g_k + μ_j ≥ 0`
//! * `x_k = Δ_j`: `g_k + μ_j ≤ 0`
//!
//! Instead of reconstructing multipliers explicitly, we use the equivalent
//! *projected-gradient residual* `‖x − P(x − ∇E(x))‖∞` (zero iff KKT
//! holds) plus the Frank–Wolfe duality gap as a function-value bound.

use crate::energy_program::EnergyProgram;

/// Optimality certificate for a feasible point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KktReport {
    /// `‖x − P(x − ∇E(x))‖∞`: zero exactly at KKT points.
    pub projected_gradient_residual: f64,
    /// Frank–Wolfe duality gap `⟨∇E(x), x − s_LMO⟩ ≥ E(x) − E*`.
    pub duality_gap: f64,
    /// Worst primal constraint violation (should be ~0 for feasible input).
    pub feasibility_violation: f64,
    /// Objective at the point.
    pub objective: f64,
}

impl KktReport {
    /// Is the point optimal within `tol` (relative)?
    pub fn is_optimal(&self, tol: f64) -> bool {
        let scale = 1.0 + self.objective.abs();
        self.feasibility_violation <= tol * scale
            && (self.duality_gap <= tol * scale || self.projected_gradient_residual <= tol)
    }
}

/// Compute the KKT certificate of `x` for program `ep`.
pub fn kkt_report(ep: &EnergyProgram, x: &[f64]) -> KktReport {
    let dim = ep.dim();
    assert_eq!(x.len(), dim);

    let mut g = vec![0.0; dim];
    ep.gradient(x, &mut g);

    // Projected-gradient residual.
    let mut shifted = vec![0.0; dim];
    for k in 0..dim {
        shifted[k] = x[k] - g[k];
    }
    let mut proj = vec![0.0; dim];
    ep.project(&shifted, &mut proj);
    let residual = x
        .iter()
        .zip(&proj)
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0_f64, f64::max);

    // Feasibility violation: project x itself and measure displacement.
    let mut pfeas = vec![0.0; dim];
    ep.project(x, &mut pfeas);
    let feas = x
        .iter()
        .zip(&pfeas)
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0_f64, f64::max);

    KktReport {
        projected_gradient_residual: residual,
        duality_gap: ep.duality_gap(x),
        feasibility_violation: feas,
        objective: ep.objective(x),
    }
}

/// Recover the per-subinterval capacity prices `μ_j ≥ 0` implied by a
/// (near-)optimal point.
///
/// At a KKT point every interior variable (`0 < x_k < Δ_j`) of a tight
/// block pins the block multiplier to `μ_j = −g_k`; an unsaturated block
/// has `μ_j = 0` by complementary slackness. For each saturated
/// subinterval this takes the mean of `−g_k` over its interior variables
/// (clamped into the dual-feasible interval the boundary variables allow);
/// a block with no interior variable falls back to the midpoint of that
/// interval. The output is the price vector the decomposed ADMM solver's
/// consensus duals converge to, and the input to [`price_certificate`].
pub fn subinterval_prices(ep: &EnergyProgram, x: &[f64]) -> Vec<f64> {
    let dim = ep.dim();
    assert_eq!(x.len(), dim);
    let mut g = vec![0.0; dim];
    ep.gradient(x, &mut g);

    let n_subs = ep.subinterval_count();
    let mut prices = vec![0.0; n_subs];
    for (j, price) in prices.iter_mut().enumerate() {
        let vars = ep.vars_of_sub(j);
        if vars.is_empty() {
            continue;
        }
        let delta = ep.delta_of_sub(j);
        let cap = ep.capacity(j);
        let tol = 1e-9 * (1.0 + delta);
        let load: f64 = vars.iter().map(|&k| x[k]).sum();
        if load < cap - tol {
            // Slack capacity: complementary slackness forces μ_j = 0.
            continue;
        }
        // Dual-feasible interval from the boundary variables:
        // x_k = 0 needs μ ≥ −g_k, x_k = Δ needs μ ≤ −g_k.
        let mut lo = 0.0_f64;
        let mut hi = f64::INFINITY;
        let mut interior_sum = 0.0;
        let mut interior_n = 0usize;
        for &k in vars {
            let m = -g[k];
            if x[k] <= tol {
                lo = lo.max(m);
            } else if x[k] >= delta - tol {
                hi = hi.min(m);
            } else {
                interior_sum += m;
                interior_n += 1;
            }
        }
        let guess = if interior_n > 0 {
            interior_sum / interior_n as f64
        } else if hi.is_finite() {
            0.5 * (lo + hi.max(lo))
        } else {
            lo
        };
        *price = guess.clamp(lo, hi.max(lo)).max(0.0);
    }
    prices
}

/// Residual of the KKT conditions under an *explicit* price vector (one
/// `μ_j ≥ 0` per subinterval): the largest violation, across all
/// variables and blocks, of stationarity
/// (`g_k + μ_j = 0` interior, `≥ 0` at zero, `≤ 0` at the cap) and
/// complementary slackness (`μ_j · (m·Δ_j − Σ_i x_{i,j}) = 0`), scaled
/// relative to `1 + |E(x)|`.
///
/// Zero exactly at a KKT point with correct prices; the ADMM smoke checks
/// feed it the prices recovered by [`subinterval_prices`] to certify a
/// decomposed solve with an explicit dual witness rather than only the
/// projected-gradient residual.
pub fn price_certificate(ep: &EnergyProgram, x: &[f64], prices: &[f64]) -> f64 {
    let dim = ep.dim();
    assert_eq!(x.len(), dim);
    assert_eq!(prices.len(), ep.subinterval_count());
    let mut g = vec![0.0; dim];
    ep.gradient(x, &mut g);
    let scale = 1.0 + ep.objective(x).abs();

    let mut worst = 0.0_f64;
    for (j, &mu) in prices.iter().enumerate() {
        worst = worst.max(-mu); // dual feasibility: μ_j ≥ 0
        let vars = ep.vars_of_sub(j);
        if vars.is_empty() {
            continue;
        }
        let delta = ep.delta_of_sub(j);
        let tol = 1e-9 * (1.0 + delta);
        let load: f64 = vars.iter().map(|&k| x[k]).sum();
        worst = worst.max(mu * (ep.capacity(j) - load) / scale);
        for &k in vars {
            let r = g[k] + mu;
            let viol = if x[k] <= tol {
                (-r).max(0.0)
            } else if x[k] >= delta - tol {
                r.max(0.0)
            } else {
                r.abs()
            };
            worst = worst.max(viol / scale);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::solve_pgd;
    use crate::solver::SolveOptions;
    use esched_subinterval::Timeline;
    use esched_types::{PolynomialPower, TaskSet};

    fn intro() -> (EnergyProgram, TaskSet) {
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)]);
        let tl = Timeline::build(&ts);
        let ep = EnergyProgram::new(&ts, &tl, 2, PolynomialPower::paper(3.0, 0.01));
        (ep, ts)
    }

    #[test]
    fn solver_output_passes_kkt() {
        let (ep, _) = intro();
        let r = solve_pgd(&ep, ep.initial_point(), &SolveOptions::precise());
        let report = kkt_report(&ep, &r.x);
        assert!(
            report.is_optimal(1e-5),
            "residual {}, gap {}",
            report.projected_gradient_residual,
            report.duality_gap
        );
    }

    #[test]
    fn non_optimal_point_fails_kkt() {
        let (ep, _) = intro();
        let x0 = ep.initial_point();
        let report = kkt_report(&ep, &x0);
        assert!(!report.is_optimal(1e-6));
        assert!(report.duality_gap > 1e-3);
    }

    #[test]
    fn recovered_prices_certify_an_optimal_point() {
        let (ep, _) = intro();
        let r = solve_pgd(&ep, ep.initial_point(), &SolveOptions::precise());
        let prices = subinterval_prices(&ep, &r.x);
        assert!(prices.iter().all(|&p| p >= 0.0));
        let res = price_certificate(&ep, &r.x, &prices);
        assert!(res < 1e-4, "price residual {res}");
    }

    #[test]
    fn wrong_prices_fail_the_certificate() {
        let (ep, _) = intro();
        let r = solve_pgd(&ep, ep.initial_point(), &SolveOptions::precise());
        let bogus = vec![42.0; ep.subinterval_count()];
        assert!(price_certificate(&ep, &r.x, &bogus) > 1e-2);
    }

    #[test]
    fn infeasible_point_is_flagged() {
        let (ep, _) = intro();
        let x = vec![100.0; ep.dim()];
        let report = kkt_report(&ep, &x);
        assert!(report.feasibility_violation > 1.0);
        assert!(!report.is_optimal(1e-6));
    }
}
