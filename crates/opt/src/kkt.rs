//! KKT residual certification for the energy program.
//!
//! Theorem 1 rests on the reformulated problem being convex; a candidate
//! `x` is therefore globally optimal iff the KKT conditions hold. This
//! module measures how far a point is from satisfying them, giving the
//! test suite and the experiment harness an *independent* optimality
//! certificate that does not trust the solver that produced the point.
//!
//! For the program
//! `min E(x) s.t. 0 ≤ x_{i,j} ≤ Δ_j, Σ_i x_{i,j} ≤ m·Δ_j`,
//! stationarity requires, for each variable `k` in subinterval block `j`
//! (with `g = ∇E(x)` and block multiplier `μ_j ≥ 0`):
//!
//! * `x_k` interior (0 < x_k < Δ_j, block slack): `g_k = 0`
//! * interior but block tight: `g_k = −μ_j`
//! * `x_k = 0`: `g_k + μ_j ≥ 0`
//! * `x_k = Δ_j`: `g_k + μ_j ≤ 0`
//!
//! Instead of reconstructing multipliers explicitly, we use the equivalent
//! *projected-gradient residual* `‖x − P(x − ∇E(x))‖∞` (zero iff KKT
//! holds) plus the Frank–Wolfe duality gap as a function-value bound.

use crate::energy_program::EnergyProgram;

/// Optimality certificate for a feasible point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KktReport {
    /// `‖x − P(x − ∇E(x))‖∞`: zero exactly at KKT points.
    pub projected_gradient_residual: f64,
    /// Frank–Wolfe duality gap `⟨∇E(x), x − s_LMO⟩ ≥ E(x) − E*`.
    pub duality_gap: f64,
    /// Worst primal constraint violation (should be ~0 for feasible input).
    pub feasibility_violation: f64,
    /// Objective at the point.
    pub objective: f64,
}

impl KktReport {
    /// Is the point optimal within `tol` (relative)?
    pub fn is_optimal(&self, tol: f64) -> bool {
        let scale = 1.0 + self.objective.abs();
        self.feasibility_violation <= tol * scale
            && (self.duality_gap <= tol * scale || self.projected_gradient_residual <= tol)
    }
}

/// Compute the KKT certificate of `x` for program `ep`.
pub fn kkt_report(ep: &EnergyProgram, x: &[f64]) -> KktReport {
    let dim = ep.dim();
    assert_eq!(x.len(), dim);

    let mut g = vec![0.0; dim];
    ep.gradient(x, &mut g);

    // Projected-gradient residual.
    let mut shifted = vec![0.0; dim];
    for k in 0..dim {
        shifted[k] = x[k] - g[k];
    }
    let mut proj = vec![0.0; dim];
    ep.project(&shifted, &mut proj);
    let residual = x
        .iter()
        .zip(&proj)
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0_f64, f64::max);

    // Feasibility violation: project x itself and measure displacement.
    let mut pfeas = vec![0.0; dim];
    ep.project(x, &mut pfeas);
    let feas = x
        .iter()
        .zip(&pfeas)
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0_f64, f64::max);

    KktReport {
        projected_gradient_residual: residual,
        duality_gap: ep.duality_gap(x),
        feasibility_violation: feas,
        objective: ep.objective(x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::solve_pgd;
    use crate::solver::SolveOptions;
    use esched_subinterval::Timeline;
    use esched_types::{PolynomialPower, TaskSet};

    fn intro() -> (EnergyProgram, TaskSet) {
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)]);
        let tl = Timeline::build(&ts);
        let ep = EnergyProgram::new(&ts, &tl, 2, PolynomialPower::paper(3.0, 0.01));
        (ep, ts)
    }

    #[test]
    fn solver_output_passes_kkt() {
        let (ep, _) = intro();
        let r = solve_pgd(&ep, ep.initial_point(), &SolveOptions::precise());
        let report = kkt_report(&ep, &r.x);
        assert!(
            report.is_optimal(1e-5),
            "residual {}, gap {}",
            report.projected_gradient_residual,
            report.duality_gap
        );
    }

    #[test]
    fn non_optimal_point_fails_kkt() {
        let (ep, _) = intro();
        let x0 = ep.initial_point();
        let report = kkt_report(&ep, &x0);
        assert!(!report.is_optimal(1e-6));
        assert!(report.duality_gap > 1e-3);
    }

    #[test]
    fn infeasible_point_is_flagged() {
        let (ep, _) = intro();
        let x = vec![100.0; ep.dim()];
        let report = kkt_report(&ep, &x);
        assert!(report.feasibility_violation > 1.0);
        assert!(!report.is_optimal(1e-6));
    }
}
