//! # esched-opt
//!
//! Convex-optimization substrate for the `esched` workspace.
//!
//! The paper proves (Theorem 1) that energy-minimal scheduling of
//! aperiodic tasks with static power is a convex program solvable in
//! polynomial time, and uses that optimum — computed by an interior-point
//! solver in the authors' setup — purely as the normalization baseline
//! `E^OPT` for every experiment. This crate supplies that baseline from
//! scratch:
//!
//! * [`energy_program`] — the reformulated program (variables `x_{i,j}`,
//!   blockwise capped-simplex feasible set, objective/gradient oracle),
//! * [`projection`] — exact Euclidean projection and linear-minimization
//!   oracle for one capped-simplex block,
//! * [`gradient`] / [`fista`] / [`frank_wolfe`] — three independent
//!   first-order solvers (cross-checked in tests and ablation benches),
//! * [`barrier`] — a structure-exploiting primal log-barrier interior
//!   point method (the solver the paper names), with [`linalg`] as its
//!   dense-solve substrate,
//! * [`block_descent`] — Gauss–Seidel over subintervals with exact
//!   closed-form waterfilling block solves,
//! * [`admm`] — consensus ADMM with exact per-task proximal solves fanned
//!   across the shared worker pool: the decomposed, parallel solver for
//!   large instances, and the only one with dual (price) state,
//! * [`kkt`] — solver-independent optimality certification,
//! * [`scalar`] — bisection / safeguarded Newton / golden section,
//! * [`least_squares`] — the `p(f) = γf^α + p₀` power-curve fit
//!   (Section VI.C),
//! * [`flow`] — Dinic max-flow and the exact flow-based schedulability
//!   test underlying the related-work algorithms (refs [2] and [4]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admm;
pub mod barrier;
pub mod block_descent;
pub mod energy_program;
pub mod fista;
pub mod flow;
pub mod frank_wolfe;
pub mod gradient;
pub mod kkt;
pub mod least_squares;
pub mod linalg;
pub mod projection;
pub mod scalar;
pub mod solver;

pub use admm::{solve_admm, solve_admm_in};
pub use barrier::solve_barrier;
pub use block_descent::{solve_block_descent, solve_block_descent_from};
pub use energy_program::EnergyProgram;
pub use fista::solve_fista;
pub use flow::{feasible_at_frequency, min_frequency_by_flow, Dinic};
pub use frank_wolfe::solve_frank_wolfe;
pub use gradient::solve_pgd;
pub use kkt::{kkt_report, price_certificate, subinterval_prices, KktReport};
pub use least_squares::{fit_power_curve, PowerFit};
pub use projection::{lmo_capped_simplex, project_capped_simplex};
pub use solver::{IterSample, SolveOptions, SolveResult, SolverKind, SolverTelemetry};
