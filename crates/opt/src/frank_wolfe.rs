//! Frank–Wolfe (conditional gradient) solver.
//!
//! Projection-free: each iteration calls the exact linear-minimization
//! oracle over the product of capped simplices (a greedy fill,
//! [`crate::projection::lmo_capped_simplex`]) and moves toward the
//! returned vertex with a golden-section line search. Slower asymptotics
//! than FISTA (`O(1/k)`), but every iterate is a convex combination of
//! polytope vertices, the duality gap comes for free, and it cross-checks
//! the other two solvers in the ablation benches.

use crate::energy_program::EnergyProgram;
use crate::scalar::golden_min;
use crate::solver::{IterSample, SolveOptions, SolveResult, SolverTelemetry};
use esched_obs::{event, span, Level};
use std::time::Instant;

/// Run Frank–Wolfe from `x0` (must be feasible).
pub fn solve_frank_wolfe(ep: &EnergyProgram, x0: Vec<f64>, opts: &SolveOptions) -> SolveResult {
    let dim = ep.dim();
    let x0 = crate::solver::sanitize_start(ep, x0);
    let _span = span!(
        Level::Debug,
        "solve_frank_wolfe",
        dim = dim,
        max_iters = opts.max_iters
    );
    let t_start = Instant::now();

    let mut x = x0;
    let mut fx = ep.objective(&x);
    let mut g = vec![0.0; dim];
    let mut s = vec![0.0; dim];
    let mut trial = vec![0.0; dim];
    let mut converged = false;
    let mut iters = 0usize;
    let mut gap = f64::INFINITY;
    let mut stalled = 0usize;
    let mut stalls = 0usize;
    let mut iter_trace = opts.trace_iters.then(Vec::new);

    for it in 0..opts.max_iters {
        iters = it + 1;
        ep.gradient(&x, &mut g);
        ep.lmo(&g, &mut s);

        // Duality gap is a byproduct of the LMO.
        gap = (0..dim).map(|k| g[k] * (x[k] - s[k])).sum();
        if gap <= opts.gap_tol * (1.0 + fx.abs()) {
            converged = true;
            break;
        }

        // Exact-ish line search on the segment x + γ(s − x), γ ∈ [0, 1].
        let gamma = golden_min(
            |gm| {
                for k in 0..dim {
                    trial[k] = x[k] + gm * (s[k] - x[k]);
                }
                ep.objective(&trial)
            },
            0.0,
            1.0,
            1e-10,
        );

        for k in 0..dim {
            x[k] += gamma * (s[k] - x[k]);
        }
        let f_new = ep.objective(&x);
        let decrease = fx - f_new;
        fx = f_new;
        if let Some(trace) = iter_trace.as_mut() {
            trace.push(IterSample {
                iter: iters,
                objective: fx,
                gap,
                step: gamma,
            });
        }

        if decrease.abs() <= opts.rel_tol * (1.0 + fx.abs()) {
            stalled += 1;
            stalls += 1;
            if stalled >= opts.stall_iters {
                converged = true;
                break;
            }
        } else {
            stalled = 0;
        }
    }

    if !converged {
        event!(
            Level::Warn,
            "frank-wolfe hit iteration cap",
            iters = iters,
            gap = gap
        );
    }
    let telemetry = SolverTelemetry {
        iters,
        stalls,
        // The FW gap falls out of the LMO, so every iteration evaluates it.
        gap_evals: iters,
        backtracks: 0,
        wall_s: t_start.elapsed().as_secs_f64(),
        final_gap: gap,
        converged,
    };
    telemetry.publish("frank_wolfe");
    event!(
        Level::Debug,
        "frank-wolfe done",
        iters = iters,
        gap = gap,
        converged = converged,
    );
    SolveResult {
        objective: fx,
        x,
        gap,
        iters,
        converged,
        telemetry,
        iter_trace,
        dual: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::solve_pgd;
    use esched_subinterval::Timeline;
    use esched_types::{PolynomialPower, TaskSet};

    #[test]
    fn frank_wolfe_matches_pgd_on_intro_example() {
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)]);
        let tl = Timeline::build(&ts);
        let ep = EnergyProgram::new(&ts, &tl, 2, PolynomialPower::paper(3.0, 0.01));
        let fw = solve_frank_wolfe(&ep, ep.initial_point(), &SolveOptions::default());
        let pg = solve_pgd(&ep, ep.initial_point(), &SolveOptions::default());
        assert!(
            (fw.objective - pg.objective).abs() < 1e-3 * (1.0 + pg.objective),
            "fw {} vs pgd {}",
            fw.objective,
            pg.objective
        );
        assert!(ep.is_feasible(&fw.x, 1e-7));
    }

    #[test]
    fn iterates_stay_feasible_throughout() {
        // Convex combinations of feasible points are feasible; spot-check
        // the final iterate on a bigger instance.
        let ts = TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ]);
        let tl = Timeline::build(&ts);
        let ep = EnergyProgram::new(&ts, &tl, 4, PolynomialPower::paper(3.0, 0.2));
        let r = solve_frank_wolfe(&ep, ep.initial_point(), &SolveOptions::fast());
        assert!(ep.is_feasible(&r.x, 1e-7));
        assert!(r.gap.is_finite());
    }
}
