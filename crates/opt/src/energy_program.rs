//! The paper's reformulated convex energy program (Section IV.B).
//!
//! Variables: execution time `x_{i,j}` of task `i` during subinterval `j`,
//! restricted to the pairs where task `i`'s window covers subinterval `j`.
//! Writing `X_i = Σ_j x_{i,j}` for the total execution time of task `i`,
//! the objective is
//!
//! ```text
//! E(x) = Σ_i [ γ · C_i^α / X_i^{α−1} + p₀ · X_i ]
//! ```
//!
//! (each task runs at its equal-frequency optimum `f_i = C_i / X_i`,
//! by Observation 1), subject to
//!
//! ```text
//! 0 ≤ x_{i,j} ≤ Δ_j                    (box per available pair)
//! Σ_i x_{i,j} ≤ m · Δ_j                (capacity per subinterval)
//! ```
//!
//! The feasible set is a Cartesian product of capped simplices — one per
//! subinterval — so Euclidean projection decomposes blockwise
//! ([`crate::projection`]). This module owns the variable layout, the
//! objective/gradient oracle, blockwise projection and LMO, and a feasible
//! starting point. The solvers in [`crate::gradient`], [`crate::fista`],
//! and [`crate::frank_wolfe`] are generic over this oracle.

// Indexed loops below walk several parallel arrays at once; iterator
// zips would obscure the numerics. Silence clippy's range-loop lint here.
#![allow(clippy::needless_range_loop)]

use crate::projection::{lmo_capped_simplex, project_capped_simplex};
use esched_subinterval::Timeline;
use esched_types::{PolynomialPower, TaskSet};

/// Minimum total execution time any task is allowed to shrink to, as a
/// fraction of the time it would need at an (arbitrarily chosen) very high
/// reference frequency. Keeps the objective and gradient finite; the true
/// optimum is always far from this floor because energy diverges as
/// `X_i → 0`.
const X_FLOOR: f64 = 1e-9;

/// The convex program instance: layout plus oracle.
#[derive(Debug, Clone)]
pub struct EnergyProgram {
    /// Number of cores `m`.
    pub cores: usize,
    /// Power model (continuous).
    pub power: PolynomialPower,
    /// `C_i` per task.
    works: Vec<f64>,
    /// `Δ_j` per subinterval.
    deltas: Vec<f64>,
    /// Per-task contiguous range of subinterval indices (from the
    /// timeline).
    spans: Vec<(usize, usize)>,
    /// Flat-variable offset of each task's block; task `i`'s variables are
    /// `flat[offsets[i] .. offsets[i] + span_len(i)]`, ordered by
    /// subinterval.
    offsets: Vec<usize>,
    /// Total variable count.
    dim: usize,
    /// For each subinterval `j`: the flat indices of the variables that
    /// participate in its capacity constraint.
    block_vars: Vec<Vec<usize>>,
}

impl EnergyProgram {
    /// Build the program for `tasks` on `cores` cores under `power`, using
    /// `timeline` for the variable layout.
    pub fn new(tasks: &TaskSet, timeline: &Timeline, cores: usize, power: PolynomialPower) -> Self {
        assert!(cores > 0);
        let works: Vec<f64> = tasks.tasks().iter().map(|t| t.wcec).collect();
        let deltas: Vec<f64> = (0..timeline.len()).map(|j| timeline.delta(j)).collect();
        let mut spans = Vec::with_capacity(tasks.len());
        let mut offsets = Vec::with_capacity(tasks.len());
        let mut dim = 0usize;
        for i in 0..tasks.len() {
            let r = timeline.span(i);
            spans.push((r.start, r.end));
            offsets.push(dim);
            dim += r.len();
        }
        let mut block_vars = vec![Vec::new(); timeline.len()];
        for i in 0..tasks.len() {
            let (a, b) = spans[i];
            for j in a..b {
                block_vars[j].push(offsets[i] + (j - a));
            }
        }
        Self {
            cores,
            power,
            works,
            deltas,
            spans,
            offsets,
            dim,
            block_vars,
        }
    }

    /// Number of flat variables.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.works.len()
    }

    /// Number of subintervals.
    pub fn subinterval_count(&self) -> usize {
        self.deltas.len()
    }

    /// Capacity `m·Δ_j` of subinterval `j`'s coupling constraint.
    pub fn capacity(&self, sub: usize) -> f64 {
        self.cores as f64 * self.deltas[sub]
    }

    /// Subinterval length `Δ_j`.
    pub fn delta_of_sub(&self, sub: usize) -> f64 {
        self.deltas[sub]
    }

    /// The power parameters `(γ, α, p₀)` the objective was built with.
    pub fn power_parameters(&self) -> (f64, f64, f64) {
        (self.power.gamma, self.power.alpha, self.power.p0)
    }

    /// Execution requirement `C_i` of task `i`.
    pub fn work_of_task(&self, task: usize) -> f64 {
        self.works[task]
    }

    /// The contiguous subinterval range `[a, b)` task `i`'s window covers.
    pub fn span_of_task(&self, task: usize) -> (usize, usize) {
        self.spans[task]
    }

    /// Flat-variable offset of task `i`'s block; its variables are
    /// `flat[offset .. offset + (b − a)]` for `(a, b) =`
    /// [`EnergyProgram::span_of_task`], ordered by subinterval. The
    /// decomposed ADMM solver leans on this contiguity to hand disjoint
    /// `&mut` task blocks to pool workers.
    pub fn offset_of_task(&self, task: usize) -> usize {
        self.offsets[task]
    }

    /// Flat indices of the variables participating in subinterval `j`'s
    /// capacity constraint (ascending).
    pub fn vars_of_sub(&self, sub: usize) -> &[usize] {
        &self.block_vars[sub]
    }

    /// Flat index of `x_{i,j}`, if task `i` is available in subinterval
    /// `j`.
    pub fn flat_index(&self, task: usize, sub: usize) -> Option<usize> {
        let (a, b) = self.spans[task];
        (a..b)
            .contains(&sub)
            .then(|| self.offsets[task] + (sub - a))
    }

    /// Total execution time `X_i` of task `i` under `x`.
    pub fn total_time(&self, x: &[f64], task: usize) -> f64 {
        let (a, b) = self.spans[task];
        let o = self.offsets[task];
        x[o..o + (b - a)].iter().sum()
    }

    /// Per-task total times as a vector.
    pub fn total_times(&self, x: &[f64]) -> Vec<f64> {
        (0..self.works.len())
            .map(|i| self.total_time(x, i))
            .collect()
    }

    /// Objective value `E(x)`. Infinite when some `X_i` is ~0.
    pub fn objective(&self, x: &[f64]) -> f64 {
        let a = self.power.alpha;
        let mut e = 0.0;
        for (i, &c) in self.works.iter().enumerate() {
            let xi = self.total_time(x, i).max(X_FLOOR);
            e += self.power.gamma * c.powf(a) / xi.powf(a - 1.0) + self.power.p0 * xi;
        }
        e
    }

    /// Gradient of the objective into `g`. The partial w.r.t. every
    /// variable of task `i` is the same:
    /// `∂E/∂x_{i,j} = −γ(α−1)·C_i^α / X_i^α + p₀`.
    pub fn gradient(&self, x: &[f64], g: &mut [f64]) {
        assert_eq!(g.len(), self.dim);
        let a = self.power.alpha;
        for (i, &c) in self.works.iter().enumerate() {
            let (s0, s1) = self.spans[i];
            let o = self.offsets[i];
            let xi = self.total_time(x, i).max(X_FLOOR);
            let gi = -self.power.gamma * (a - 1.0) * c.powf(a) / xi.powf(a) + self.power.p0;
            for k in 0..(s1 - s0) {
                g[o + k] = gi;
            }
        }
    }

    /// Project `z` onto the feasible polytope, blockwise per subinterval.
    pub fn project(&self, z: &[f64], out: &mut [f64]) {
        assert_eq!(z.len(), self.dim);
        assert_eq!(out.len(), self.dim);
        // Scratch buffers per block; blocks are small (≤ n), reuse one.
        let mut zb: Vec<f64> = Vec::new();
        let mut ub: Vec<f64> = Vec::new();
        let mut ob: Vec<f64> = Vec::new();
        for (j, vars) in self.block_vars.iter().enumerate() {
            if vars.is_empty() {
                continue;
            }
            let delta = self.deltas[j];
            zb.clear();
            ub.clear();
            zb.extend(vars.iter().map(|&k| z[k]));
            ub.extend(std::iter::repeat_n(delta, vars.len()));
            ob.clear();
            ob.resize(vars.len(), 0.0);
            project_capped_simplex(&zb, &ub, self.cores as f64 * delta, &mut ob);
            for (&k, &v) in vars.iter().zip(&ob) {
                out[k] = v;
            }
        }
    }

    /// Linear-minimization oracle over the feasible polytope (blockwise).
    pub fn lmo(&self, g: &[f64], out: &mut [f64]) {
        assert_eq!(g.len(), self.dim);
        assert_eq!(out.len(), self.dim);
        let mut gb: Vec<f64> = Vec::new();
        let mut ub: Vec<f64> = Vec::new();
        let mut ob: Vec<f64> = Vec::new();
        for (j, vars) in self.block_vars.iter().enumerate() {
            if vars.is_empty() {
                continue;
            }
            let delta = self.deltas[j];
            gb.clear();
            ub.clear();
            gb.extend(vars.iter().map(|&k| g[k]));
            ub.extend(std::iter::repeat_n(delta, vars.len()));
            ob.clear();
            ob.resize(vars.len(), 0.0);
            lmo_capped_simplex(&gb, &ub, self.cores as f64 * delta, &mut ob);
            for (&k, &v) in vars.iter().zip(&ob) {
                out[k] = v;
            }
        }
    }

    /// Certified duality gap at feasible `x`:
    /// `gap(x) = ⟨∇E(x), x − s⟩` with `s` the LMO minimizer. For convex `E`,
    /// `E(x) − E* ≤ gap(x)`.
    pub fn duality_gap(&self, x: &[f64]) -> f64 {
        let mut g = vec![0.0; self.dim];
        let mut s = vec![0.0; self.dim];
        self.gradient(x, &mut g);
        self.lmo(&g, &mut s);
        g.iter()
            .zip(x.iter().zip(&s))
            .map(|(&gk, (&xk, &sk))| gk * (xk - sk))
            .sum()
    }

    /// A feasible, interior-ish starting point: in every subinterval give
    /// each overlapping task `min(Δ_j, m·Δ_j/n_j)` — the evenly allocating
    /// rule, which is feasible by construction and keeps every `X_i`
    /// comfortably positive.
    pub fn initial_point(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.dim];
        for (j, vars) in self.block_vars.iter().enumerate() {
            if vars.is_empty() {
                continue;
            }
            let share =
                (self.cores as f64 * self.deltas[j] / vars.len() as f64).min(self.deltas[j]);
            for &k in vars {
                x[k] = share;
            }
        }
        x
    }

    /// Build a feasible warm-start point whose per-task totals track a
    /// previous optimum's `X_i` — the remap used when the task set
    /// mutated between solves (online arrivals, completions, window
    /// shifts change both `dim` and the subinterval layout, so the raw
    /// `x` vector cannot carry over). The objective depends on `x` only
    /// through the totals `X_i`, so any point reproducing the old totals
    /// re-enters the new program at (nearly) the old objective value.
    ///
    /// `totals[i]` is the target total of task `i`; tasks beyond
    /// `totals.len()` (arrivals) keep the evenly-allocating share, and
    /// non-finite or non-positive targets are ignored. Each target is
    /// spread uniformly over the task's span, clamped to the box, and
    /// the result is projected onto the block constraints.
    pub fn warm_start_from_totals(&self, totals: &[f64]) -> Vec<f64> {
        let mut x = self.initial_point();
        for i in 0..self.task_count() {
            let Some(&target) = totals.get(i) else {
                continue;
            };
            if !target.is_finite() || target <= 0.0 {
                continue;
            }
            let (a, b) = self.spans[i];
            if a == b {
                continue;
            }
            let per = target / (b - a) as f64;
            let o = self.offsets[i];
            for (k, j) in (a..b).enumerate() {
                x[o + k] = per.min(self.deltas[j]);
            }
        }
        let mut out = vec![0.0; self.dim];
        self.project(&x, &mut out);
        out
    }

    /// Is `x` feasible (within `tol`)?
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        for (j, vars) in self.block_vars.iter().enumerate() {
            let delta = self.deltas[j];
            let mut sum = 0.0;
            for &k in vars {
                if x[k] < -tol || x[k] > delta + tol {
                    return false;
                }
                sum += x[k];
            }
            if sum > self.cores as f64 * delta + tol {
                return false;
            }
        }
        true
    }

    /// Per-task execution times by subinterval: `result[i][j_local]`
    /// aligned with the task's span. Used to materialize a schedule from a
    /// solution.
    pub fn per_task_allocation(&self, x: &[f64]) -> Vec<Vec<(usize, f64)>> {
        (0..self.works.len())
            .map(|i| {
                let (a, b) = self.spans[i];
                let o = self.offsets[i];
                (a..b).map(|j| (j, x[o + (j - a)])).collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_subinterval::Timeline;
    use esched_types::TaskSet;

    fn intro_program(cores: usize, alpha: f64, p0: f64) -> (EnergyProgram, TaskSet) {
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)]);
        let tl = Timeline::build(&ts);
        let p = PolynomialPower::paper(alpha, p0);
        (EnergyProgram::new(&ts, &tl, cores, p), ts)
    }

    #[test]
    fn layout_counts() {
        let (ep, _) = intro_program(2, 3.0, 0.01);
        // Spans: τ0 covers all 5 subintervals, τ1 covers 3, τ2 covers 1.
        assert_eq!(ep.dim(), 9);
        assert_eq!(ep.task_count(), 3);
        assert_eq!(ep.subinterval_count(), 5);
        assert_eq!(ep.flat_index(0, 0), Some(0));
        assert_eq!(ep.flat_index(0, 4), Some(4));
        assert_eq!(ep.flat_index(1, 0), None);
        assert_eq!(ep.flat_index(1, 1), Some(5));
        assert_eq!(ep.flat_index(2, 2), Some(8));
    }

    #[test]
    fn initial_point_is_feasible() {
        let (ep, _) = intro_program(2, 3.0, 0.01);
        let x0 = ep.initial_point();
        assert!(ep.is_feasible(&x0, 1e-9));
        // Every task gets positive time.
        for i in 0..3 {
            assert!(ep.total_time(&x0, i) > 0.0);
        }
    }

    #[test]
    fn objective_matches_hand_computation() {
        let (ep, _) = intro_program(2, 3.0, 0.01);
        // Put τ0's full window to use: X0 = 32/3, X1 = 16/3, X2 = 4 (the
        // paper's optimal solution). E = Σ C³/X² + 0.01·ΣX.
        let mut x = vec![0.0; ep.dim()];
        // τ0 occupies [0,2],[2,4] fully, 8/3 of [4,8], [8,10],[10,12] fully.
        x[ep.flat_index(0, 0).unwrap()] = 2.0;
        x[ep.flat_index(0, 1).unwrap()] = 2.0;
        x[ep.flat_index(0, 2).unwrap()] = 8.0 / 3.0;
        x[ep.flat_index(0, 3).unwrap()] = 2.0;
        x[ep.flat_index(0, 4).unwrap()] = 2.0;
        // τ1: [2,4] full, 4/3 of [4,8], [8,10] full.
        x[ep.flat_index(1, 1).unwrap()] = 2.0;
        x[ep.flat_index(1, 2).unwrap()] = 4.0 / 3.0;
        x[ep.flat_index(1, 3).unwrap()] = 2.0;
        // τ2: 4 of [4,8].
        x[ep.flat_index(2, 2).unwrap()] = 4.0;
        assert!(ep.is_feasible(&x, 1e-9));
        let expect = 64.0 / (32.0_f64 / 3.0).powi(2)
            + 8.0 / (16.0_f64 / 3.0).powi(2)
            + 64.0 / 16.0
            + 0.01 * (32.0 / 3.0 + 16.0 / 3.0 + 4.0);
        assert!((ep.objective(&x) - expect).abs() < 1e-10);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (ep, _) = intro_program(2, 3.0, 0.05);
        let x = ep.initial_point();
        let mut g = vec![0.0; ep.dim()];
        ep.gradient(&x, &mut g);
        let h = 1e-6;
        for k in 0..ep.dim() {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp[k] += h;
            xm[k] -= h;
            let fd = (ep.objective(&xp) - ep.objective(&xm)) / (2.0 * h);
            assert!(
                (g[k] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "k={k}: {g:?} vs fd {fd}",
                g = g[k]
            );
        }
    }

    #[test]
    fn projection_produces_feasible_points() {
        let (ep, _) = intro_program(2, 3.0, 0.01);
        let z: Vec<f64> = (0..ep.dim()).map(|k| 3.0 - k as f64 * 0.7).collect();
        let mut out = vec![0.0; ep.dim()];
        ep.project(&z, &mut out);
        assert!(ep.is_feasible(&out, 1e-9));
    }

    #[test]
    fn lmo_produces_feasible_vertices() {
        let (ep, _) = intro_program(2, 3.0, 0.01);
        let x = ep.initial_point();
        let mut g = vec![0.0; ep.dim()];
        ep.gradient(&x, &mut g);
        let mut s = vec![0.0; ep.dim()];
        ep.lmo(&g, &mut s);
        assert!(ep.is_feasible(&s, 1e-9));
    }

    #[test]
    fn duality_gap_nonnegative_and_zero_at_optimum_direction() {
        let (ep, _) = intro_program(2, 3.0, 0.01);
        let x = ep.initial_point();
        assert!(ep.duality_gap(&x) >= -1e-9);
    }

    #[test]
    fn total_times_sum_matches_blocks() {
        let (ep, _) = intro_program(2, 3.0, 0.0);
        let x = ep.initial_point();
        let tt = ep.total_times(&x);
        for (i, &t) in tt.iter().enumerate() {
            assert!((t - ep.total_time(&x, i)).abs() < 1e-12);
        }
    }
}
