//! Consensus ADMM: the decomposed, parallel E^OPT solver.
//!
//! The reformulated program (Section IV.B) is block-separable per task —
//! `E(x) = Σ_i φ_i(X_i)` with `X_i = Σ_j x_{i,j}` — and only the
//! per-subinterval capacity constraints couple tasks. Splitting
//!
//! ```text
//! minimize  f(x) + g(z)   s.t.  x = z
//! f(x) = E(x) + I{0 ≤ x_{i,j} ≤ Δ_j}     (task-separable)
//! g(z) = I{Σ_i z_{i,j} ≤ m·Δ_j, box}      (subinterval-separable)
//! ```
//!
//! makes both proximal operators exact and cheap:
//!
//! * **x-update, one small strictly-convex problem per task.** For task
//!   `i` with box caps `Δ_k` and anchor `v = z − u`,
//!   `argmin φ_i(Σ_k x_k) + (ρ/2)‖x − v‖²` has the closed form
//!   `x_k = clamp(v_k − t, 0, Δ_k)` where the shift `t = φ_i'(X)/ρ` is
//!   the unique root of the strictly increasing scalar
//!   `H(t) = t − φ_i'(S(t))/ρ`, `S(t) = Σ_k clamp(v_k − t, 0, Δ_k)`,
//!   solved with [`crate::scalar::bisect`] in `t`-space (where coordinate
//!   accuracy equals bracket accuracy). These per-task solves are fanned across
//!   the shared worker pool ([`esched_obs::pool::Pool::scoped_run`]) in
//!   fixed 64-task chunks: each chunk owns a disjoint contiguous `&mut`
//!   range of the flat vector (task blocks are contiguous by layout), and
//!   because every task's arithmetic is a pure function of its own data,
//!   the result is **byte-identical at any worker count** — chunk
//!   geometry depends on `n` only, never on `pool.threads()`.
//! * **z-update, one ρ-weighted capped-simplex projection per
//!   subinterval** ([`weighted_project`]), solved exactly by a
//!   deterministic breakpoint sweep.
//!
//! The penalty is **diagonal and curvature-matched**: each task gets its
//! own `ρ_i = clamp(φ_i''(X_i), 1e-4, 1e6)`, re-estimated from the live
//! iterate every few rounds (with damping and a dual rescale that keeps
//! the unscaled prices continuous). Task curvatures on contended
//! instances span ten-plus orders of magnitude, and a single scalar ρ
//! lets the consensus projection crowd high-curvature tasks to exactly
//! zero (where the floored objective explodes) while their prices
//! recover one residual per round; the weighted projection instead
//! charges each task its own price to move, which is what makes the
//! method converge at n ≳ 1000. The curvature match makes each prox a
//! Newton-scaled step, and it is the *only* penalty adaptation — a
//! residual-balancing global scalar on top was tried and is actively
//! harmful (see the residual comment in the loop).
//!
//! The scaled dual `u` carries the per-subinterval prices: at consensus,
//! `ρ_i·u_k` converges to the (negated) multiplier of variable `k`'s
//! binding constraints, which is why warm-starting the duals
//! ([`SolveOptions::warm_start_dual`]) lets online re-certification
//! converge in a handful of rounds. Stored duals are **unscaled**
//! (`y = ρ_i·u`) so they remain valid under a different penalty on the
//! next solve. Over-relaxation `x̂ = 1.6·x + (1 − 1.6)·z` accelerates the
//! consensus exchange; everything stays deterministic.
//!
//! Convergence is certified exactly like every other solver here: the
//! Frank–Wolfe duality gap of the *feasible* iterate `z` (the projection
//! output, so feasibility violation is ~0) must fall below
//! `gap_tol · (1 + |E|)`. The gap is also checked on the starting point,
//! so a warm start that is already optimal returns after zero rounds.

use crate::energy_program::EnergyProgram;
use crate::scalar::bisect;
use crate::solver::{IterSample, SolveOptions, SolveResult, SolverTelemetry};
use esched_obs::pool::Pool;
use esched_obs::{event, span, Level};
use std::time::Instant;

/// Over-relaxation factor; 1.5–1.8 is the standard accelerating range.
const RELAX: f64 = 1.6;
/// Bounds on the per-task curvature-matched penalty `ρ_i`.
const RHO_TASK_MIN: f64 = 1e-4;
const RHO_TASK_MAX: f64 = 1e6;
/// Refresh cadence for the curvature-matched `ρ_i` (iterations). The
/// curvature of a squeezed task explodes as its share shrinks, so the
/// penalties must track the iterate: frozen-at-start weights leave
/// whichever tasks began with low curvature permanently cheap to crowd
/// out of contended subintervals.
const RHO_REFRESH_EVERY: usize = 10;
/// Tasks per pool job. Fixed — a function of `n` only — so the flat
/// vector splits identically at every worker count.
const TASKS_PER_CHUNK: usize = 64;
/// Below this task count the chunked fan-out is pure overhead; run the
/// same per-task updates serially (bit-identical by construction).
const PARALLEL_MIN_TASKS: usize = 256;

/// Solve with consensus ADMM on an env-sized pool
/// (`ESCHED_ENGINE_THREADS`); see [`solve_admm_in`].
pub fn solve_admm(ep: &EnergyProgram, opts: &SolveOptions) -> SolveResult {
    solve_admm_in(ep, opts, &Pool::new())
}

/// Solve with consensus ADMM, fanning per-task subproblems across `pool`.
///
/// Starts from [`SolveOptions::warm_start`] /
/// [`SolveOptions::warm_start_dual`] when set (validated; mismatches fall
/// back to the cold start), and returns the unscaled dual point in
/// [`SolveResult::dual`] for the next warm start.
pub fn solve_admm_in(ep: &EnergyProgram, opts: &SolveOptions, pool: &Pool) -> SolveResult {
    let dim = ep.dim();
    let n_tasks = ep.task_count();
    let _span = span!(
        Level::Debug,
        "solve_admm",
        dim = dim,
        tasks = n_tasks,
        workers = pool.threads(),
        max_iters = opts.max_iters
    );
    let t_start = Instant::now();
    let (gamma, alpha, p0) = ep.power_parameters();

    // Box cap of every flat variable (the Δ_j of its subinterval), and the
    // per-task chunk ranges — both fixed for the whole solve.
    let mut caps = vec![0.0_f64; dim];
    for i in 0..n_tasks {
        let (a, b) = ep.span_of_task(i);
        let o = ep.offset_of_task(i);
        for (k, j) in (a..b).enumerate() {
            caps[o + k] = ep.delta_of_sub(j);
        }
    }

    // Primal start: consensus variable z (always feasible). The cold
    // start allocates each subinterval's capacity *proportionally to
    // task work* rather than evenly: price equalization at the optimum
    // gives `X_i ∝ c_i` within a contended region, so the proportional
    // point already has the right shape and the prices only fine-tune
    // it — from the even split, thousands of rounds go into undoing the
    // shape first.
    let mut z = if let Some(x0) = opts.warm_point(ep) {
        esched_obs::metric_counter!("esched.opt.warm_starts").inc();
        x0
    } else {
        work_proportional_point(ep)
    };

    // Penalty: *per-task* curvature matching (diagonal preconditioning),
    // `ρ_i = clamp(φ_i''(X_i⁰), …)`.
    // Task curvatures here span many orders of magnitude — a contended
    // instance has tasks whose optimum sits at large X (φ'' ~ 1e-4) next
    // to tasks squeezed to tiny X (φ'' ~ 1e6 and beyond) — and a single
    // scalar ρ serves neither: the high-curvature tasks get crowded to
    // exactly zero by the consensus projection (exploding the floored
    // objective) while their prices crawl up one residual per round. A
    // curvature-matched ρ_i both tempers each task's prox and, through
    // the ρ-weighted projection below, makes the consensus step respect
    // how expensive it is to move each task.
    let task_curvature = |z: &[f64], i: usize| -> f64 {
        let xi = ep.total_time(z, i).max(1e-6);
        let c = ep.work_of_task(i);
        let curv = gamma * alpha * (alpha - 1.0) * c.powf(alpha) * xi.powf(-alpha - 1.0);
        if curv.is_finite() {
            curv.clamp(RHO_TASK_MIN, RHO_TASK_MAX)
        } else {
            RHO_TASK_MAX
        }
    };
    let mut rho_base: Vec<f64> = (0..n_tasks).map(|i| task_curvature(&z, i)).collect();
    // Width normalization: the dual price of subinterval `j` climbs at
    // most `ρ_k·Δ_j` per round (the primal residual on a coordinate is
    // bounded by its cap), so on event-driven timelines where Δ spans
    // orders of magnitude a narrow saturated subinterval recovers its
    // price thousands of times slower than a wide one — the whole solve
    // then waits on one sliver. Scaling each coordinate's weight by
    // `Δ̄/Δ_j` makes the price speed uniform across subintervals; on
    // slotted timelines (all Δ equal) the scale is exactly 1 everywhere.
    let mean_delta = caps.iter().sum::<f64>() / dim.max(1) as f64;
    let delta_scale: Vec<f64> = caps
        .iter()
        .map(|&d| if d > 0.0 { mean_delta / d } else { 1.0 })
        .collect();
    // Per-coordinate weight `ρ_k = ρ_i · Δ̄/Δ_j`, in flat-vector layout
    // for the prox, the weighted projection, and the dual scaling.
    let mut rho_of = vec![0.0_f64; dim];
    for (i, &rb) in rho_base.iter().enumerate() {
        let o = ep.offset_of_task(i);
        let (a, b) = ep.span_of_task(i);
        for k in 0..(b - a) {
            rho_of[o + k] = rb * delta_scale[o + k];
        }
    }

    // Scaled dual u_k = y_k/ρ_i; warm duals are stored unscaled so they
    // adopt cleanly under whatever penalties this solve chose.
    let mut u = match opts.warm_duals(ep) {
        Some(y) => y.iter().zip(&rho_of).map(|(&yk, &rk)| yk / rk).collect(),
        None => vec![0.0_f64; dim],
    };

    let mut x = z.clone();
    let mut w = vec![0.0_f64; dim];
    let mut v = vec![0.0_f64; dim];

    let mut fz = ep.objective(&z);
    let mut gap = ep.duality_gap(&z);
    let mut gap_evals = 1usize;
    let mut gap_fresh = true;
    let mut converged = gap <= opts.gap_tol * (1.0 + fz.abs());
    let mut iters = 0usize;
    let mut stalled = 0usize;
    let mut stalls = 0usize;
    let mut last_stall_gap = f64::INFINITY;
    let mut no_progress = 0usize;
    let mut rho_steps = 0usize;
    let mut iter_trace = opts.trace_iters.then(Vec::new);
    // Tail-window ergodic average of z, evaluated whenever the live
    // iterate fails a gap check (see `try_adopt_average`).
    let mut z_acc = vec![0.0_f64; dim];
    let mut acc_n = 0usize;

    let use_pool = pool.threads() > 1 && n_tasks >= PARALLEL_MIN_TASKS;

    while !converged && iters < opts.max_iters {
        iters += 1;

        // Re-match the per-task penalties to the current iterate's
        // curvature, rescaling u so the unscaled dual y = ρ_i·u is
        // continuous across the switch.
        if iters.is_multiple_of(RHO_REFRESH_EVERY) {
            for (i, rb) in rho_base.iter_mut().enumerate() {
                // Deadband tracking: leave ρ_i alone while the live
                // curvature stays within 2× of it, and step at most 2×
                // toward it otherwise. Both halves matter: the cap keeps
                // a 1e10 curvature jump from kicking the consensus
                // iterate across the landscape, and the deadband gives
                // the penalties a true fixed point — chasing the exact
                // curvature forever means every small wobble of z
                // re-jiggles the metric (and rescales the duals), and
                // ADMM under a never-settling metric orbits a limit
                // cycle just outside tight tolerances instead of
                // converging.
                let curv = task_curvature(&z, i);
                let fresh = if curv > *rb * 2.0 {
                    *rb * 2.0
                } else if curv < *rb * 0.5 {
                    *rb * 0.5
                } else {
                    continue;
                };
                rho_steps += 1;
                let ratio = *rb / fresh;
                let o = ep.offset_of_task(i);
                let (a, b) = ep.span_of_task(i);
                for k in o..o + (b - a) {
                    u[k] *= ratio;
                    rho_of[k] = fresh * delta_scale[k];
                }
                *rb = fresh;
            }
        }

        // x-update: per-task proximal solves on v = z − u.
        for k in 0..dim {
            v[k] = z[k] - u[k];
        }
        if use_pool {
            // Deterministic chunking: split x into contiguous per-chunk
            // task ranges (layout keeps each task's block contiguous).
            let mut jobs: Vec<(usize, usize, usize, &mut [f64])> = Vec::new();
            let mut rest = x.as_mut_slice();
            let mut consumed = 0usize;
            let mut lo = 0usize;
            while lo < n_tasks {
                let hi = (lo + TASKS_PER_CHUNK).min(n_tasks);
                let end = if hi == n_tasks {
                    dim
                } else {
                    ep.offset_of_task(hi)
                };
                let (head, tail) = rest.split_at_mut(end - consumed);
                jobs.push((lo, hi, consumed, head));
                rest = tail;
                consumed = end;
                lo = hi;
            }
            let v_ref = &v;
            let caps_ref = &caps;
            let rho_ref = &rho_of;
            pool.scoped_run(
                jobs,
                |(lo, hi, base, xs): (usize, usize, usize, &mut [f64])| {
                    for i in lo..hi {
                        let o = ep.offset_of_task(i);
                        let (a, b) = ep.span_of_task(i);
                        let l = b - a;
                        task_prox(
                            &mut xs[o - base..o - base + l],
                            &v_ref[o..o + l],
                            &caps_ref[o..o + l],
                            &rho_ref[o..o + l],
                            ep.work_of_task(i),
                            gamma,
                            alpha,
                            p0,
                        );
                    }
                },
            );
        } else {
            for i in 0..n_tasks {
                let o = ep.offset_of_task(i);
                let (a, b) = ep.span_of_task(i);
                let l = b - a;
                task_prox(
                    &mut x[o..o + l],
                    &v[o..o + l],
                    &caps[o..o + l],
                    &rho_of[o..o + l],
                    ep.work_of_task(i),
                    gamma,
                    alpha,
                    p0,
                );
            }
        }

        // Over-relaxed consensus: x̂ = RELAX·x + (1−RELAX)·z, then the
        // blockwise ρ-weighted capped-simplex projection of x̂ + u gives
        // z⁺ (weighting by ρ_i is what the diagonal penalty prescribes —
        // the consensus step must charge each task its own price to move).
        for k in 0..dim {
            x[k] = RELAX * x[k] + (1.0 - RELAX) * z[k];
            w[k] = x[k] + u[k];
        }
        weighted_project(ep, &w, &rho_of, &mut z);
        for k in 0..dim {
            z_acc[k] += z[k];
        }
        acc_n += 1;
        gap_fresh = false;

        // Residuals and dual ascent: r = x̂ − z⁺ (primal). The dual
        // residual ‖P·(z⁺ − z)‖ with P = diag(ρ_i) is not consumed by any
        // control decision — the curvature refresh above is the only
        // penalty adaptation — so only r is accumulated. (An earlier
        // residual-balancing global scalar on top of ρ_i was actively
        // harmful here: the curvature refresh makes the dual residual
        // spike transiently, the balancer read that as "penalty too
        // high" and collapsed the scale ~1e3 below the curvature match,
        // and with a Newton-mismatched anchor both residuals crawled for
        // thousands of rounds. Trusting φ'' outright converges in ~100s
        // of rounds at n in the thousands.)
        let mut r2 = 0.0_f64;
        for k in 0..dim {
            let rk = x[k] - z[k];
            r2 += rk * rk;
            u[k] += rk;
        }
        let r_norm = r2.sqrt();

        let fz_new = ep.objective(&z);
        let decrease = fz - fz_new;
        fz = fz_new;
        if let Some(trace) = iter_trace.as_mut() {
            trace.push(IterSample {
                iter: iters,
                objective: fz,
                gap,
                step: r_norm,
            });
        }

        // ADMM is not monotone in the objective, so stall on *absolute*
        // movement staying tiny — but a stall alone is no certificate
        // (badly scaled penalties make early rounds crawl): it must be
        // confirmed by a fresh duality-gap check, else the counter resets
        // and the curvature refresh gets time to find the right scale.
        if decrease.abs() <= opts.rel_tol * (1.0 + fz.abs()) {
            stalled += 1;
            stalls += 1;
            if stalled >= opts.stall_iters {
                gap = ep.duality_gap(&z);
                gap_evals += 1;
                gap_fresh = true;
                if gap <= opts.gap_tol * (1.0 + fz.abs())
                    || try_adopt_average(
                        ep,
                        &mut z,
                        &mut z_acc,
                        &mut acc_n,
                        &mut fz,
                        &mut gap,
                        &mut gap_evals,
                        opts.gap_tol,
                    )
                {
                    converged = true;
                } else {
                    // Three consecutive stall windows with zero gap
                    // progress mean the iterate sits at the prox's
                    // numerical floor (a frozen point): stop honestly
                    // (converged stays false) instead of burning the
                    // whole iteration budget there. Any real progress,
                    // however slow, resets the strike counter.
                    if gap >= 0.9999 * last_stall_gap {
                        no_progress += 1;
                        if no_progress >= 3 {
                            break;
                        }
                    } else {
                        no_progress = 0;
                    }
                    last_stall_gap = gap;
                    stalled = 0;
                }
            }
        } else {
            stalled = 0;
        }

        if !converged && iters.is_multiple_of(opts.gap_check_every) {
            gap = ep.duality_gap(&z);
            gap_evals += 1;
            gap_fresh = true;
            if gap <= opts.gap_tol * (1.0 + fz.abs())
                || try_adopt_average(
                    ep,
                    &mut z,
                    &mut z_acc,
                    &mut acc_n,
                    &mut fz,
                    &mut gap,
                    &mut gap_evals,
                    opts.gap_tol,
                )
            {
                converged = true;
            }
        }
    }

    if !gap_fresh {
        gap = ep.duality_gap(&z);
        gap_evals += 1;
    }
    if !converged {
        event!(
            Level::Warn,
            "admm hit iteration cap",
            iters = iters,
            gap = gap
        );
    }
    let dual: Vec<f64> = u.iter().zip(&rho_of).map(|(&uk, &rk)| rk * uk).collect();
    let telemetry = SolverTelemetry {
        iters,
        stalls,
        gap_evals,
        backtracks: rho_steps,
        wall_s: t_start.elapsed().as_secs_f64(),
        final_gap: gap,
        converged,
    };
    telemetry.publish("admm");
    event!(
        Level::Debug,
        "admm done",
        iters = iters,
        gap_evals = gap_evals,
        rho_steps = rho_steps,
        gap = gap,
        converged = converged,
    );
    SolveResult {
        objective: fz,
        x: z,
        gap,
        iters,
        converged,
        telemetry,
        iter_trace,
        dual: Some(dual),
    }
}

/// Certify the tail-window ergodic average `z̄` when the live iterate
/// can't: near a *degenerate* optimum (several tasks tied at the same
/// marginal power over a saturated subinterval, so a whole face of the
/// feasible set is optimal) the consensus iterate orbits the flat face
/// forever — the prices converge but `z` hops between near-optimal
/// vertices and its Frank–Wolfe gap floors just outside tight
/// tolerances. The orbit's mean lies *on* the face (feasible, since the
/// constraint set is convex), and ergodic ADMM averages converge even
/// where the last iterate cycles. Evaluated only when `z` fails a gap
/// check; adopted — copied over `z`, with objective and gap updated —
/// only when `z̄` both certifies and beats the live gap, so the solver's
/// dynamics never see the average and determinism is untouched. The
/// window resets at every evaluation so the mean tracks the current
/// orbit, not the cold-start transient.
#[allow(clippy::too_many_arguments)]
fn try_adopt_average(
    ep: &EnergyProgram,
    z: &mut [f64],
    z_acc: &mut [f64],
    acc_n: &mut usize,
    fz: &mut f64,
    gap: &mut f64,
    gap_evals: &mut usize,
    gap_tol: f64,
) -> bool {
    if *acc_n == 0 {
        return false;
    }
    let inv = 1.0 / *acc_n as f64;
    let zbar: Vec<f64> = z_acc.iter().map(|&s| s * inv).collect();
    for s in z_acc.iter_mut() {
        *s = 0.0;
    }
    *acc_n = 0;
    let fbar = ep.objective(&zbar);
    let gbar = ep.duality_gap(&zbar);
    *gap_evals += 1;
    if gbar <= gap_tol * (1.0 + fbar.abs()) && gbar < *gap {
        z.copy_from_slice(&zbar);
        *fz = fbar;
        *gap = gbar;
        return true;
    }
    false
}

/// Work-proportional feasible start: in every subinterval, split the
/// `m·Δ_j` budget across overlapping tasks proportionally to their work
/// `c_i` (capped at `Δ_j`; zero-work tasks get zero, which is their
/// optimum). Feasible by construction: the uncapped shares sum exactly
/// to the budget and capping only shrinks them.
fn work_proportional_point(ep: &EnergyProgram) -> Vec<f64> {
    let dim = ep.dim();
    let n_tasks = ep.task_count();
    let mut task_of = vec![0usize; dim];
    for i in 0..n_tasks {
        let o = ep.offset_of_task(i);
        let (a, b) = ep.span_of_task(i);
        task_of[o..o + (b - a)].fill(i);
    }
    let mut z = vec![0.0_f64; dim];
    for j in 0..ep.subinterval_count() {
        let vars = ep.vars_of_sub(j);
        if vars.is_empty() {
            continue;
        }
        let delta = ep.delta_of_sub(j);
        let budget = ep.cores as f64 * delta;
        let total_work: f64 = vars.iter().map(|&k| ep.work_of_task(task_of[k])).sum();
        if total_work <= 0.0 {
            continue;
        }
        for &k in vars {
            z[k] = (budget * ep.work_of_task(task_of[k]) / total_work).min(delta);
        }
    }
    z
}

/// Blockwise ρ-weighted projection onto the feasible polytope: per
/// subinterval `j`, minimize `Σ_k ρ_k (z_k − w_k)²` subject to
/// `0 ≤ z_k ≤ Δ_j` and `Σ_k z_k ≤ m·Δ_j`.
///
/// KKT gives `z_k = clamp(w_k − θ/ρ_k, 0, Δ_j)` with `θ ≥ 0` the
/// multiplier of the budget constraint (`θ = 0` when the clamped point
/// already fits). `S(θ) = Σ_k clamp(w_k − θ/ρ_k, 0, Δ_j)` is piecewise
/// linear and non-increasing, so `θ` is found **exactly** by sweeping its
/// breakpoints (`ρ_k(w_k − Δ_j)` where a share un-caps, `ρ_k·w_k` where
/// it hits zero) in sorted order and solving the linear segment that
/// crosses the budget. Exactness matters: with curvature-matched weights
/// spanning `RHO_TASK_MIN..RHO_TASK_MAX`, a bisected `θ` accurate to
/// 1e-13 relative would still leave O(θ_err/ρ_k) coordinate error on the
/// smallest weights. The sweep is a fixed deterministic order (ties
/// broken by bit pattern then index), so results are byte-identical
/// across runs and worker counts.
fn weighted_project(ep: &EnergyProgram, w: &[f64], rho: &[f64], out: &mut [f64]) {
    let mut events: Vec<(f64, usize, f64)> = Vec::new();
    for j in 0..ep.subinterval_count() {
        let vars = ep.vars_of_sub(j);
        if vars.is_empty() {
            continue;
        }
        let delta = ep.delta_of_sub(j);
        let budget = ep.cores as f64 * delta;
        let mut s0 = 0.0_f64;
        for &k in vars {
            s0 += w[k].clamp(0.0, delta);
        }
        if s0 <= budget {
            for &k in vars {
                out[k] = w[k].clamp(0.0, delta);
            }
            continue;
        }
        // Breakpoint sweep. Slope of S on the current segment is
        // −Σ 1/ρ_k over shares strictly between their bounds.
        events.clear();
        let mut slope = 0.0_f64;
        for &k in vars {
            let t_uncap = rho[k] * (w[k] - delta);
            let t_zero = rho[k] * w[k];
            if t_zero <= 0.0 {
                continue; // w_k ≤ 0: zero for every θ ≥ 0.
            }
            if t_uncap > 0.0 {
                // Capped at θ = 0; becomes active at t_uncap.
                events.push((t_uncap, k, -1.0 / rho[k]));
            } else {
                // Active at θ = 0.
                slope -= 1.0 / rho[k];
            }
            events.push((t_zero, k, 1.0 / rho[k]));
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite breakpoints")
                .then(a.1.cmp(&b.1))
                .then(a.2.partial_cmp(&b.2).expect("finite slopes"))
        });
        let mut theta = 0.0_f64;
        let mut s = s0;
        let mut found = None;
        for &(t, _, ds) in &events {
            let s_next = s + slope * (t - theta);
            if s_next <= budget && slope < 0.0 {
                found = Some(theta + (budget - s) / slope);
                break;
            }
            s = s_next;
            theta = t;
            slope += ds;
        }
        let theta = match found {
            Some(t) => t,
            // S(θ) reaches 0 at the last breakpoint, and budget ≥ 0, so
            // a crossing segment always exists unless budget is exactly 0.
            None => events.last().map(|e| e.0).unwrap_or(0.0),
        };
        for &k in vars {
            out[k] = (w[k] - theta / rho[k]).clamp(0.0, delta);
        }
    }
}

/// Exact proximal step for one task: minimize
/// `φ(Σ_k x_k) + Σ_k (ρ_k/2)(x_k − v_k)²` over `0 ≤ x_k ≤ caps_k`.
///
/// Stationarity gives `x_k = clamp(v_k − t/ρ_k, 0, caps_k)` where
/// `t = φ'(X)` is the task's marginal power, and the self-consistency
/// condition is solved **in `t`-space**: `H(t) = t − φ'(S(t))` with
/// `S(t) = Σ_k clamp(v_k − t/ρ_k, 0, caps_k)` is strictly increasing
/// (`S` decreasing, `φ'` increasing), and a `t` bracket of width `ε`
/// pins every coordinate to `ε/ρ_k` — the bisection tolerance is scaled
/// by the smallest weight so the loosest coordinate still resolves to
/// ~1e-13. The alternative parametrization in `X = Σx` is numerically
/// treacherous: near tiny optima `φ'(X)` moves ~1e13 per unit of `X`,
/// so an `X` resolved to 1e-13 still yields a garbage shift and a
/// collapsed-to-zero prox (a spurious ADMM fixed point where both
/// residuals vanish and `ρ` adaptation never engages).
///
/// Bracket: below `t_lo = min_k ρ_k(v_k − caps_k)` every share
/// saturates (`S ≡ Σ caps`), so `H(t_lo) ≥ 0` means the all-capped
/// point is the answer; at `t_hi = max_k ρ_k·v_k`, `S → 0` and
/// `φ' → −∞` give `H(t_hi) = +∞`, so the sign change always exists.
#[allow(clippy::too_many_arguments)]
fn task_prox(
    x: &mut [f64],
    v: &[f64],
    caps: &[f64],
    rho: &[f64],
    work: f64,
    gamma: f64,
    alpha: f64,
    p0: f64,
) {
    let l = x.len();
    if l == 0 {
        return;
    }
    let cap_sum: f64 = caps.iter().sum();
    if cap_sum <= 0.0 {
        for xk in x.iter_mut() {
            *xk = 0.0;
        }
        return;
    }
    let cpow = gamma * (alpha - 1.0) * work.powf(alpha);
    if cpow <= 0.0 {
        // Zero-work task: φ' ≡ p₀ and the prox is a plain shifted clamp.
        for k in 0..l {
            x[k] = (v[k] - p0 / rho[k]).clamp(0.0, caps[k]);
        }
        return;
    }
    let total = |t: f64| -> f64 {
        let mut s = 0.0;
        for k in 0..l {
            s += (v[k] - t / rho[k]).clamp(0.0, caps[k]);
        }
        s
    };
    let h = |t: f64| t - (p0 - cpow * total(t).powf(-alpha));
    let mut t_lo = f64::INFINITY;
    let mut t_hi = f64::NEG_INFINITY;
    let mut rho_min = f64::INFINITY;
    for k in 0..l {
        t_lo = t_lo.min(rho[k] * (v[k] - caps[k]));
        t_hi = t_hi.max(rho[k] * v[k]);
        rho_min = rho_min.min(rho[k]);
    }
    if h(t_lo) >= 0.0 {
        x.copy_from_slice(caps);
        return;
    }
    let t = bisect(h, t_lo, t_hi, 1e-13 * rho_min.min(1.0));
    for k in 0..l {
        x[k] = (v[k] - t / rho[k]).clamp(0.0, caps[k]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::solve_pgd;
    use esched_subinterval::Timeline;
    use esched_types::{PolynomialPower, TaskSet};

    fn program(triples: &[(f64, f64, f64)], cores: usize, alpha: f64, p0: f64) -> EnergyProgram {
        let ts = TaskSet::from_triples(triples);
        let tl = Timeline::build(&ts);
        EnergyProgram::new(&ts, &tl, cores, PolynomialPower::paper(alpha, p0))
    }

    #[test]
    fn solves_paper_section_ii_example() {
        let ep = program(
            &[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)],
            2,
            3.0,
            0.01,
        );
        let r = solve_admm(&ep, &SolveOptions::precise());
        assert!(r.converged, "gap = {}", r.gap);
        let expect = 155.0 / 32.0 + 0.2;
        assert!(
            (r.objective - expect).abs() < 1e-5,
            "objective {} vs expected {}",
            r.objective,
            expect
        );
        assert!(ep.is_feasible(&r.x, 1e-9));
        let tt = ep.total_times(&r.x);
        assert!((tt[0] - 32.0 / 3.0).abs() < 1e-3, "X0 = {}", tt[0]);
        assert!((tt[1] - 16.0 / 3.0).abs() < 1e-3, "X1 = {}", tt[1]);
        assert!((tt[2] - 4.0).abs() < 1e-3, "X2 = {}", tt[2]);
    }

    #[test]
    fn matches_pgd_on_a_contended_instance() {
        let ep = program(
            &[
                (0.0, 10.0, 8.0),
                (2.0, 18.0, 14.0),
                (4.0, 16.0, 8.0),
                (6.0, 14.0, 4.0),
                (8.0, 20.0, 10.0),
                (12.0, 22.0, 6.0),
            ],
            2,
            3.0,
            0.05,
        );
        let a = solve_admm(&ep, &SolveOptions::precise());
        let p = solve_pgd(&ep, ep.initial_point(), &SolveOptions::precise());
        assert!(a.converged);
        assert!(
            (a.objective - p.objective).abs() <= 2e-5 * (1.0 + p.objective.abs()),
            "admm {} vs pgd {}",
            a.objective,
            p.objective
        );
        assert!(crate::kkt::kkt_report(&ep, &a.x).is_optimal(1e-5));
    }

    #[test]
    fn returns_duals_and_warm_restart_converges_immediately() {
        let ep = program(
            &[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)],
            2,
            3.0,
            0.01,
        );
        let cold = solve_admm(&ep, &SolveOptions::default());
        assert!(cold.converged);
        let dual = cold.dual.clone().expect("admm carries duals");
        assert_eq!(dual.len(), ep.dim());
        let warm_opts = SolveOptions::default()
            .with_warm_start(cold.x.clone())
            .with_warm_start_dual(dual);
        let warm = solve_admm(&ep, &warm_opts);
        assert!(warm.converged);
        assert!(
            warm.iters < cold.iters,
            "warm {} !< cold {}",
            warm.iters,
            cold.iters
        );
    }

    #[test]
    fn mismatched_warm_dual_is_ignored() {
        let ep = program(&[(0.0, 5.0, 2.0)], 1, 2.0, 0.25);
        let opts = SolveOptions::precise().with_warm_start_dual(vec![f64::NAN; ep.dim()]);
        let r = solve_admm(&ep, &opts);
        assert!(r.converged);
        assert!(
            (r.objective - 2.0).abs() < 1e-6,
            "objective {}",
            r.objective
        );
    }

    #[test]
    fn task_prox_agrees_with_unconstrained_optimality() {
        // Single task, generous caps: at the root, x sums to X and
        // φ'(X) + ρ(x_k − v_k) = 0 for interior coordinates.
        let v = [0.4, 0.7, 0.2];
        let caps = [10.0, 10.0, 10.0];
        let mut x = [0.0; 3];
        let (work, rho, gamma, alpha, p0) = (2.0, 1.5, 1.0, 3.0, 0.1);
        task_prox(&mut x, &v, &caps, &[rho; 3], work, gamma, alpha, p0);
        let x_tot: f64 = x.iter().sum();
        let dphi = p0 - gamma * (alpha - 1.0) * work.powf(alpha) * x_tot.powf(-alpha);
        for k in 0..3 {
            let grad = dphi + rho * (x[k] - v[k]);
            assert!(grad.abs() < 1e-8, "k={k}: stationarity residual {grad}");
        }
    }
}
