//! Figure 6 — NEC vs. static power `p₀ ∈ {0, 0.02, …, 0.20}`
//! (`α = 3`, `m = 4`, `n = 20`, intensity ladder, 100 trials/point).

use crate::harness::{ExperimentSpec, SweepPoint};
use esched_core::NecPoint;
use esched_obs::RunReport;
use esched_types::PolynomialPower;
use esched_workload::GeneratorConfig;
use std::path::Path;

/// The swept static-power values.
pub fn p0_values() -> Vec<f64> {
    (0..=10).map(|k| 0.02 * k as f64).collect()
}

/// The sweep as a generic [`ExperimentSpec`].
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "fig6",
        table_x: "p0",
        csv_x: "p0",
        title: "Figure 6 — NEC vs static power (alpha=3, m=4, n=20",
        points: p0_values()
            .into_iter()
            .map(|p0| SweepPoint {
                x: format!("{p0:.2}"),
                tag: format!("p0={p0:.2}"),
                cores: 4,
                power: PolynomialPower::paper(3.0, p0),
                config: GeneratorConfig::paper_default(),
            })
            .collect(),
    }
}

/// Run the sweep; returns `(x labels, NEC rows)`.
pub fn run_stats(trials: usize, base_seed: u64) -> (Vec<String>, Vec<NecPoint>, Vec<NecPoint>) {
    spec().run_stats(trials, base_seed)
}

/// [`run_stats`] that also assembles the per-trial [`RunReport`].
pub fn run_stats_reported(
    trials: usize,
    base_seed: u64,
) -> (Vec<String>, Vec<NecPoint>, Vec<NecPoint>, RunReport) {
    spec().run_stats_reported(trials, base_seed)
}

/// Run the sweep; returns `(x labels, mean NEC rows)`.
pub fn run(trials: usize, base_seed: u64) -> (Vec<String>, Vec<NecPoint>) {
    spec().run(trials, base_seed)
}

/// Run, print, and write artifacts.
pub fn run_and_report(trials: usize, base_seed: u64, outdir: &Path) -> String {
    spec().run_and_report(trials, base_seed, outdir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_eleven_points() {
        assert_eq!(p0_values().len(), 11);
        assert_eq!(p0_values()[0], 0.0);
        assert!((p0_values()[10] - 0.2).abs() < 1e-12);
        assert_eq!(spec().points.len(), 11);
    }

    #[test]
    fn reduced_run_shows_paper_shape() {
        // Small trial count for test speed; the qualitative claims of
        // Fig. 6 must already hold: F2 near-optimal, F1 worse than F2,
        // finals no worse than intermediates.
        let (_, rows) = run(3, 2024);
        for p in &rows {
            assert!(p.f2 <= p.i2 + 1e-9);
            assert!(p.f1 <= p.i1 + 1e-9);
            assert!(p.f2 < 1.5, "f2 = {}", p.f2);
        }
        let mean_f1: f64 = rows.iter().map(|p| p.f1).sum::<f64>() / rows.len() as f64;
        let mean_f2: f64 = rows.iter().map(|p| p.f2).sum::<f64>() / rows.len() as f64;
        assert!(mean_f2 <= mean_f1 + 1e-9, "f2 {mean_f2} vs f1 {mean_f1}");
    }
}
