//! Figure 8 — NEC vs. number of cores `m ∈ {2, 4, 6, 8, 10, 12}`
//! (`α = 3`, `p₀ = 0.2`, `n = 20`, intensity ladder, 100 trials/point).

use crate::harness::{ExperimentSpec, SweepPoint};
use esched_core::NecPoint;
use esched_obs::RunReport;
use esched_types::PolynomialPower;
use esched_workload::GeneratorConfig;
use std::path::Path;

/// The swept core counts.
pub const CORE_COUNTS: [usize; 6] = [2, 4, 6, 8, 10, 12];

/// The sweep as a generic [`ExperimentSpec`].
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "fig8",
        table_x: "cores",
        csv_x: "cores",
        title: "Figure 8 — NEC vs cores (alpha=3, p0=0.2, n=20",
        points: CORE_COUNTS
            .into_iter()
            .map(|m| SweepPoint {
                x: m.to_string(),
                tag: format!("cores={m}"),
                cores: m,
                power: PolynomialPower::paper(3.0, 0.2),
                config: GeneratorConfig::paper_default(),
            })
            .collect(),
    }
}

/// Run the sweep; returns `(x labels, NEC rows)`.
pub fn run_stats(trials: usize, base_seed: u64) -> (Vec<String>, Vec<NecPoint>, Vec<NecPoint>) {
    spec().run_stats(trials, base_seed)
}

/// [`run_stats`] that also assembles the per-trial [`RunReport`].
pub fn run_stats_reported(
    trials: usize,
    base_seed: u64,
) -> (Vec<String>, Vec<NecPoint>, Vec<NecPoint>, RunReport) {
    spec().run_stats_reported(trials, base_seed)
}

/// Run the sweep; returns `(x labels, mean NEC rows)`.
pub fn run(trials: usize, base_seed: u64) -> (Vec<String>, Vec<NecPoint>) {
    spec().run(trials, base_seed)
}

/// Run, print, and write artifacts.
pub fn run_and_report(trials: usize, base_seed: u64, outdir: &Path) -> String {
    spec().run_and_report(trials, base_seed, outdir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f2_improves_sharply_after_two_cores() {
        // The paper: F2 is worst at m = 2 and drops sharply as m grows.
        let (_, rows) = run(3, 31);
        let at2 = rows[0].f2;
        let at12 = rows[5].f2;
        assert!(
            at12 <= at2 + 1e-9,
            "F2 did not improve with cores: {at2} -> {at12}"
        );
        // With many cores almost nothing is heavy → near optimal.
        assert!(at12 < 1.2, "f2 at 12 cores = {at12}");
    }
}
