//! Figure 8 — NEC vs. number of cores `m ∈ {2, 4, 6, 8, 10, 12}`
//! (`α = 3`, `p₀ = 0.2`, `n = 20`, intensity ladder, 100 trials/point).

use crate::harness::{nec_stats_reported, TrialSpec};
use crate::report::{nec_csv_with_std, nec_table, write_artifact};
use esched_core::NecPoint;
use esched_obs::{RunReport, Value};
use esched_types::PolynomialPower;
use esched_workload::GeneratorConfig;
use std::path::Path;

/// The swept core counts.
pub const CORE_COUNTS: [usize; 6] = [2, 4, 6, 8, 10, 12];

/// Run the sweep; returns `(x labels, NEC rows)`.
pub fn run_stats(trials: usize, base_seed: u64) -> (Vec<String>, Vec<NecPoint>, Vec<NecPoint>) {
    let (xs, rows, stds, _) = run_stats_reported(trials, base_seed);
    (xs, rows, stds)
}

/// [`run_stats`] that also assembles the per-trial [`RunReport`].
pub fn run_stats_reported(
    trials: usize,
    base_seed: u64,
) -> (Vec<String>, Vec<NecPoint>, Vec<NecPoint>, RunReport) {
    let mut report = RunReport::new("fig8")
        .with_meta("trials_per_point", Value::Num(trials as f64))
        .with_meta("base_seed", Value::Num(base_seed as f64));
    let mut xs = Vec::new();
    let mut rows = Vec::new();
    let mut stds = Vec::new();
    for m in CORE_COUNTS {
        let spec = TrialSpec {
            cores: m,
            power: PolynomialPower::paper(3.0, 0.2),
            config: GeneratorConfig::paper_default(),
            trials,
            base_seed,
        };
        xs.push(m.to_string());
        let (mean, std) = nec_stats_reported(&spec, &format!("cores={m}"), &mut report);
        rows.push(mean);
        stds.push(std);
    }
    (xs, rows, stds, report)
}

/// Run the sweep; returns `(x labels, mean NEC rows)`.
pub fn run(trials: usize, base_seed: u64) -> (Vec<String>, Vec<NecPoint>) {
    let (xs, rows, _) = run_stats(trials, base_seed);
    (xs, rows)
}

/// Run, print, and write artifacts.
pub fn run_and_report(trials: usize, base_seed: u64, outdir: &Path) -> String {
    let (xs, rows, stds, report) = run_stats_reported(trials, base_seed);
    let table = nec_table("cores", &xs, &rows);
    let _ = write_artifact(
        outdir,
        "fig8.csv",
        &nec_csv_with_std("cores", &xs, &rows, &stds),
    );
    let _ = report.write_to_dir(outdir);
    format!("Figure 8 — NEC vs cores (alpha=3, p0=0.2, n=20, {trials} trials)\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f2_improves_sharply_after_two_cores() {
        // The paper: F2 is worst at m = 2 and drops sharply as m grows.
        let (_, rows) = run(3, 31);
        let at2 = rows[0].f2;
        let at12 = rows[5].f2;
        assert!(
            at12 <= at2 + 1e-9,
            "F2 did not improve with cores: {at2} -> {at12}"
        );
        // With many cores almost nothing is heavy → near optimal.
        assert!(at12 < 1.2, "f2 at 12 cores = {at12}");
    }
}
