//! Table and CSV emission for experiment results.

use esched_core::NecPoint;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Column labels used by every NEC sweep, in the paper's legend order.
pub const NEC_LABELS: [&str; 5] = ["Idl", "I1", "F1", "I2", "F2"];

/// Render a sweep (`x` values + NEC rows) as an aligned text table.
pub fn nec_table(x_label: &str, xs: &[String], rows: &[NecPoint]) -> String {
    assert_eq!(xs.len(), rows.len());
    let mut out = String::new();
    let _ = write!(out, "{:>12}", x_label);
    for l in NEC_LABELS {
        let _ = write!(out, "{:>10}", format!("NEC {l}"));
    }
    out.push('\n');
    for (x, p) in xs.iter().zip(rows) {
        let _ = write!(out, "{x:>12}");
        for v in p.as_array() {
            let _ = write!(out, "{v:>10.4}");
        }
        out.push('\n');
    }
    out
}

/// Render the same sweep as CSV (header + data rows).
pub fn nec_csv(x_label: &str, xs: &[String], rows: &[NecPoint]) -> String {
    assert_eq!(xs.len(), rows.len());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{x_label},nec_idl,nec_i1,nec_f1,nec_i2,nec_f2,opt_energy"
    );
    for (x, p) in xs.iter().zip(rows) {
        let a = p.as_array();
        let _ = writeln!(
            out,
            "{x},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
            a[0], a[1], a[2], a[3], a[4], p.opt_energy
        );
    }
    out
}

/// CSV with both means and sample standard deviations per column — the
/// dispersion the paper's figures omit but reviewers ask for.
pub fn nec_csv_with_std(
    x_label: &str,
    xs: &[String],
    means: &[NecPoint],
    stds: &[NecPoint],
) -> String {
    assert_eq!(xs.len(), means.len());
    assert_eq!(xs.len(), stds.len());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{x_label},nec_idl,nec_i1,nec_f1,nec_i2,nec_f2,opt_energy,\
         std_idl,std_i1,std_f1,std_i2,std_f2"
    );
    for ((x, m), s) in xs.iter().zip(means).zip(stds) {
        let a = m.as_array();
        let b = s.as_array();
        let _ = writeln!(
            out,
            "{x},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
            a[0], a[1], a[2], a[3], a[4], m.opt_energy, b[0], b[1], b[2], b[3], b[4]
        );
    }
    out
}

/// Write `content` to `dir/name`, creating `dir` if needed.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_artifact(dir: &Path, name: &str, content: &str) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(name), content)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(v: f64) -> NecPoint {
        NecPoint {
            ideal: v,
            i1: v + 1.0,
            f1: v + 0.5,
            i2: v + 0.2,
            f2: v + 0.1,
            opt_energy: 10.0 * v,
        }
    }

    #[test]
    fn table_has_header_and_rows() {
        let t = nec_table(
            "p0",
            &["0.00".into(), "0.02".into()],
            &[point(1.0), point(0.9)],
        );
        let lines: Vec<&str> = t.trim_end().split('\n').collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("NEC F2"));
        assert!(lines[1].contains("1.1000")); // f2 of first row
    }

    #[test]
    fn csv_is_machine_readable() {
        let c = nec_csv("alpha", &["2.0".into()], &[point(1.0)]);
        let mut lines = c.lines();
        assert_eq!(
            lines.next().unwrap(),
            "alpha,nec_idl,nec_i1,nec_f1,nec_i2,nec_f2,opt_energy"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("2.0,1.000000,2.000000,1.500000,"));
    }

    #[test]
    fn artifacts_land_on_disk() {
        let dir = std::env::temp_dir().join("esched-report-test");
        write_artifact(&dir, "x.csv", "a,b\n1,2\n").unwrap();
        let back = fs::read_to_string(dir.join("x.csv")).unwrap();
        assert_eq!(back, "a,b\n1,2\n");
        fs::remove_file(dir.join("x.csv")).ok();
    }
}
