//! Table II — NEC of the two *final* schedules `F1` and `F2` over the
//! `(α, p₀)` grid (`α ∈ {2.0, …, 3.0}`, `p₀ ∈ {0, 0.02, …, 0.20}`,
//! `m = 4`, `n = 20`, intensity ladder, 100 trials/cell).

use crate::harness::{mean_nec_for, TrialSpec};
use crate::report::write_artifact;
use esched_types::PolynomialPower;
use esched_workload::GeneratorConfig;
use std::fmt::Write as _;
use std::path::Path;

/// One grid cell.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Exponent.
    pub alpha: f64,
    /// Static power.
    pub p0: f64,
    /// Mean NEC of `S^F1`.
    pub f1: f64,
    /// Mean NEC of `S^F2`.
    pub f2: f64,
}

/// Grid axes. The full paper grid is 11×11 = 121 cells; `stride` lets
/// quick runs sample every other value (stride 2 → 6×6).
pub fn run(trials: usize, base_seed: u64, stride: usize) -> Vec<Cell> {
    let alphas: Vec<f64> = (0..=10)
        .step_by(stride.max(1))
        .map(|k| 2.0 + 0.1 * k as f64)
        .collect();
    let p0s: Vec<f64> = (0..=10)
        .step_by(stride.max(1))
        .map(|k| 0.02 * k as f64)
        .collect();
    let mut cells = Vec::with_capacity(alphas.len() * p0s.len());
    for &alpha in &alphas {
        for &p0 in &p0s {
            let spec = TrialSpec {
                cores: 4,
                power: PolynomialPower::paper(alpha, p0),
                config: GeneratorConfig::paper_default(),
                trials,
                base_seed,
            };
            let nec = mean_nec_for(&spec);
            cells.push(Cell {
                alpha,
                p0,
                f1: nec.f1,
                f2: nec.f2,
            });
        }
    }
    cells
}

/// Render the grid in the paper's layout: for each α row, the F1 and F2
/// NECs across the p₀ columns.
pub fn render(cells: &[Cell]) -> String {
    let mut alphas: Vec<f64> = cells.iter().map(|c| c.alpha).collect();
    alphas.dedup();
    let mut p0s: Vec<f64> = cells
        .iter()
        .filter(|c| (c.alpha - alphas[0]).abs() < 1e-12)
        .map(|c| c.p0)
        .collect();
    p0s.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let mut out = String::new();
    let _ = write!(out, "{:>6} {:>4}", "alpha", "NEC");
    for p0 in &p0s {
        let _ = write!(out, "{:>9}", format!("p0={p0:.2}"));
    }
    out.push('\n');
    for &alpha in &alphas {
        for (label, pick) in [("F1", 0), ("F2", 1)] {
            let _ = write!(out, "{alpha:>6.1} {label:>4}");
            for &p0 in &p0s {
                let cell = cells
                    .iter()
                    .find(|c| (c.alpha - alpha).abs() < 1e-12 && (c.p0 - p0).abs() < 1e-12)
                    .expect("grid is complete");
                let v = if pick == 0 { cell.f1 } else { cell.f2 };
                let _ = write!(out, "{v:>9.4}");
            }
            out.push('\n');
        }
    }
    out
}

/// CSV form of the grid.
pub fn csv(cells: &[Cell]) -> String {
    let mut out = String::from("alpha,p0,nec_f1,nec_f2\n");
    for c in cells {
        let _ = writeln!(out, "{},{},{:.6},{:.6}", c.alpha, c.p0, c.f1, c.f2);
    }
    out
}

/// Run, print, and write artifacts.
pub fn run_and_report(trials: usize, base_seed: u64, stride: usize, outdir: &Path) -> String {
    let cells = run(trials, base_seed, stride);
    let _ = write_artifact(outdir, "table2.csv", &csv(&cells));
    format!(
        "Table II — NEC of F1/F2 over the (alpha, p0) grid ({} cells, {trials} trials each)\n{}",
        cells.len(),
        render(&cells)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_grid_shape() {
        let cells = run(2, 5, 5); // alphas {2.0, 2.5, 3.0} × p0 {0, .1, .2}
        assert_eq!(cells.len(), 9);
    }

    #[test]
    fn f2_beats_f1_on_average() {
        let cells = run(3, 11, 5);
        let mean_f1: f64 = cells.iter().map(|c| c.f1).sum::<f64>() / cells.len() as f64;
        let mean_f2: f64 = cells.iter().map(|c| c.f2).sum::<f64>() / cells.len() as f64;
        assert!(
            mean_f2 <= mean_f1 + 1e-9,
            "F2 {mean_f2} worse than F1 {mean_f1}"
        );
        // The paper's Table II keeps F2 near 1.0-1.15 across the grid.
        assert!(mean_f2 < 1.3, "mean F2 = {mean_f2}");
    }

    #[test]
    fn render_contains_all_rows() {
        let cells = run(1, 1, 5);
        let text = render(&cells);
        assert!(text.contains("2.0"));
        assert!(text.contains("3.0"));
        assert!(text.contains("F1"));
        assert!(text.contains("F2"));
    }
}
