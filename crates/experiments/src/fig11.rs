//! Figure 11 — the practical-processor experiment (Section VI.C).
//!
//! Platform: a quad-core processor whose cores have the Intel XScale
//! frequency/power table; the continuous schedules are computed under the
//! fitted model `p(f) = 3.855e-6·f^2.867 + 63.58` and then *quantized* to
//! the table's levels (next level up). Workload: `C ∈ [4000, 8000]`
//! megacycles, releases on `[0, 200]` s, deadlines
//! `D = R + C/(intensity·f₂)` with `f₂ = 400 MHz` and intensity uniform on
//! `[0.1, 1]`.
//!
//! Reported per schedule: mean NEC (energy after quantization, normalized
//! by the *continuous* optimum) and the deadline-miss probability — the
//! fraction of trials in which at least one task required a frequency
//! above the top level.

// Indexed loops below walk several parallel arrays at once; iterator
// zips would obscure the numerics. Silence clippy's range-loop lint here.
#![allow(clippy::needless_range_loop)]

use crate::harness::per_trial;
use crate::report::write_artifact;
use esched_core::{
    der_schedule, even_schedule, ideal_schedule, optimal_energy, quantize_schedule, QuantizePolicy,
};
use esched_opt::SolveOptions;
use esched_types::{DiscretePower, PolynomialPower, TaskSet};
use esched_workload::{xscale_discrete, xscale_paper_fit, GeneratorConfig};
use std::fmt::Write as _;
use std::path::Path;

/// Per-trial measurements for the five schedules.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Trial {
    /// NEC of the quantized ideal, I1, F1, I2, F2 (in that order).
    pub nec: [f64; 5],
    /// Whether each schedule missed at least one deadline.
    pub missed: [bool; 5],
}

/// Aggregated results.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Result {
    /// Mean NEC per schedule (Idl, I1, F1, I2, F2).
    pub mean_nec: [f64; 5],
    /// Miss probability per schedule.
    pub miss_prob: [f64; 5],
    /// Trials run.
    pub trials: usize,
}

/// Quantize the *ideal* solution: each task runs at the smallest level ≥
/// its ideal frequency. Returns `(energy, missed)`.
fn quantize_ideal(tasks: &TaskSet, power: &PolynomialPower, table: &DiscretePower) -> (f64, bool) {
    let ideal = ideal_schedule(tasks, power);
    let mut energy = 0.0;
    let mut missed = false;
    for (i, t) in tasks.iter() {
        match table.quantize_up(ideal.freq[i]) {
            Some(level) => energy += level.power * t.wcec / level.freq,
            None => {
                let top = table.levels()[table.levels().len() - 1];
                energy += top.power * t.wcec / top.freq;
                missed = true;
            }
        }
    }
    (energy, missed)
}

/// Run one trial on `tasks`.
pub fn run_trial(tasks: &TaskSet) -> Fig11Trial {
    let power = xscale_paper_fit();
    let table = xscale_discrete();
    let opt = optimal_energy(tasks, 4, &power, &SolveOptions::fast());

    let even = even_schedule(tasks, 4, &power);
    let der = der_schedule(tasks, 4, &power);
    let (e_idl, m_idl) = quantize_ideal(tasks, &power, &table);
    let q = |s: &esched_types::Schedule| quantize_schedule(s, &table, QuantizePolicy::NextUp);
    let qi1 = q(&even.intermediate_schedule);
    let qf1 = q(&even.schedule);
    let qi2 = q(&der.intermediate_schedule);
    let qf2 = q(&der.schedule);

    Fig11Trial {
        nec: [
            e_idl / opt.energy,
            qi1.energy / opt.energy,
            qf1.energy / opt.energy,
            qi2.energy / opt.energy,
            qf2.energy / opt.energy,
        ],
        missed: [
            m_idl,
            !qi1.feasible,
            !qf1.feasible,
            !qi2.feasible,
            !qf2.feasible,
        ],
    }
}

/// Run the full experiment.
pub fn run(trials: usize, base_seed: u64) -> Fig11Result {
    let results = per_trial(
        GeneratorConfig::xscale_default(),
        trials,
        base_seed,
        |_seed, tasks| run_trial(&tasks),
    );
    let n = results.len() as f64;
    let mut mean_nec = [0.0; 5];
    let mut miss_prob = [0.0; 5];
    for r in &results {
        for k in 0..5 {
            mean_nec[k] += r.nec[k] / n;
            if r.missed[k] {
                miss_prob[k] += 1.0 / n;
            }
        }
    }
    Fig11Result {
        mean_nec,
        miss_prob,
        trials: results.len(),
    }
}

/// Run, print, and write artifacts.
pub fn run_and_report(trials: usize, base_seed: u64, outdir: &Path) -> String {
    let r = run(trials, base_seed);
    let labels = ["Idl", "I1", "F1", "I2", "F2"];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 11 — Intel XScale practical mode (m=4, n=20, {} trials)",
        r.trials
    );
    let _ = writeln!(out, "{:>8}{:>12}{:>12}", "sched", "mean NEC", "P(miss)");
    let mut csv = String::from("sched,mean_nec,miss_prob\n");
    for k in 0..5 {
        let _ = writeln!(
            out,
            "{:>8}{:>12.4}{:>12.3}",
            labels[k], r.mean_nec[k], r.miss_prob[k]
        );
        let _ = writeln!(
            csv,
            "{},{:.6},{:.6}",
            labels[k], r.mean_nec[k], r.miss_prob[k]
        );
    }
    let _ = write_artifact(outdir, "fig11.csv", &csv);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_workload::WorkloadGenerator;

    #[test]
    fn single_trial_is_sane() {
        let mut gen = WorkloadGenerator::new(GeneratorConfig::xscale_default(), 12);
        let tasks = gen.generate();
        let t = run_trial(&tasks);
        for (k, v) in t.nec.iter().enumerate() {
            assert!(v.is_finite() && *v > 0.0, "nec[{k}] = {v}");
        }
        // Quantized F2 should stay within a small factor of the continuous
        // optimum.
        assert!(t.nec[4] < 3.0, "F2 NEC = {}", t.nec[4]);
    }

    #[test]
    fn aggregated_run_reproduces_paper_ordering() {
        let r = run(4, 90);
        // F2 has the best (lowest) NEC among the four multicore schedules.
        assert!(r.mean_nec[4] <= r.mean_nec[2] + 1e-9, "F2 vs F1");
        // F2's miss probability is the smallest.
        assert!(
            r.miss_prob[4] <= r.miss_prob[1] + 1e-9,
            "F2 misses more than I1"
        );
    }
}
