//! CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! esched-experiments <command> [--trials N] [--seed N] [--out DIR] [--stride N] [--quiet]
//!
//! commands:
//!   fig2       Fig. 1-2 worked example (YDS + two-core optimum)
//!   example    Section V.D worked example (allocations, 33.0642 / 31.8362)
//!   corecount  Section VI.D core-count selection sweep
//!   fig6       NEC vs static power
//!   fig7       NEC vs alpha
//!   fig8       NEC vs core count
//!   fig9       NEC vs intensity range
//!   fig10     NEC vs task count
//!   fig11     XScale practical mode (NEC + deadline misses)
//!   table2    F1/F2 NEC over the (alpha, p0) grid
//!   all       everything above
//! ```

use esched_experiments::*;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    command: String,
    trials: usize,
    seed: u64,
    out: PathBuf,
    stride: usize,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut parsed = Args {
        command,
        trials: 100,
        seed: 2014,
        out: PathBuf::from("results"),
        stride: 1,
        quiet: false,
    };
    while let Some(flag) = args.next() {
        if flag == "--quiet" {
            parsed.quiet = true;
            continue;
        }
        let value = args
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--trials" => parsed.trials = value.parse().map_err(|e| format!("--trials: {e}"))?,
            "--seed" => parsed.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => parsed.out = PathBuf::from(value),
            "--stride" => parsed.stride = value.parse().map_err(|e| format!("--stride: {e}"))?,
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if parsed.trials == 0 {
        return Err("--trials must be positive".into());
    }
    Ok(parsed)
}

fn usage() -> String {
    "usage: esched-experiments <fig2|example|corecount|fig6|fig7|fig8|fig9|fig10|fig11|table2|ablate|solvers|all> \
     [--trials N] [--seed N] [--out DIR] [--stride N] [--quiet]\n\
     Tracing: set ESCHED_LOG (e.g. ESCHED_LOG=debug or ESCHED_LOG=esched_core=trace,info); \
     --quiet forces it off."
        .to_string()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if args.quiet {
        esched_obs::trace::disable();
    } else {
        esched_obs::trace::init_from_env();
    }
    let run_one = |cmd: &str| -> Option<String> {
        match cmd {
            "fig2" => Some(worked::fig2_report()),
            "example" => Some(worked::example_vd_report()),
            "corecount" => Some(worked::corecount_report()),
            "fig6" => Some(fig6::run_and_report(args.trials, args.seed, &args.out)),
            "fig7" => Some(fig7::run_and_report(args.trials, args.seed, &args.out)),
            "fig8" => Some(fig8::run_and_report(args.trials, args.seed, &args.out)),
            "fig9" => Some(fig9::run_and_report(args.trials, args.seed, &args.out)),
            "fig10" => Some(fig10::run_and_report(args.trials, args.seed, &args.out)),
            "fig11" => Some(fig11::run_and_report(args.trials, args.seed, &args.out)),
            "table2" => Some(table2::run_and_report(
                args.trials,
                args.seed,
                args.stride,
                &args.out,
            )),
            "ablate" => Some(ablate::run_and_report(args.trials, args.seed, &args.out)),
            "solvers" => Some(solvers::run_and_report(args.seed, &args.out)),
            _ => None,
        }
    };
    let code = match args.command.as_str() {
        "all" => {
            for cmd in [
                "fig2",
                "example",
                "corecount",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "fig11",
                "table2",
                "ablate",
                "solvers",
            ] {
                println!("==== {cmd} ====");
                println!("{}", run_one(cmd).expect("known command"));
            }
            ExitCode::SUCCESS
        }
        cmd => match run_one(cmd) {
            Some(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown command {cmd}\n{}", usage());
                ExitCode::FAILURE
            }
        },
    };
    // Flight-recorder exit dump, a no-op unless ESCHED_FLIGHT_EXIT names
    // a path (std has no atexit, so binaries call this explicitly).
    if let Some(path) = esched_obs::recorder::dump_at_exit_if_requested() {
        eprintln!("flight recorder dumped to {}", path.display());
    }
    code
}
