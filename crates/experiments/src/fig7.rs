//! Figure 7 — NEC vs. dynamic exponent `α ∈ {2.0, 2.1, …, 3.0}`
//! (`p₀ = 0`, `m = 4`, `n = 20`, intensity ladder, 100 trials/point).

use crate::harness::{ExperimentSpec, SweepPoint};
use esched_core::NecPoint;
use esched_obs::RunReport;
use esched_types::PolynomialPower;
use esched_workload::GeneratorConfig;
use std::path::Path;

/// The swept exponents.
pub fn alpha_values() -> Vec<f64> {
    (0..=10).map(|k| 2.0 + 0.1 * k as f64).collect()
}

/// The sweep as a generic [`ExperimentSpec`].
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "fig7",
        table_x: "alpha",
        csv_x: "alpha",
        title: "Figure 7 — NEC vs alpha (p0=0, m=4, n=20",
        points: alpha_values()
            .into_iter()
            .map(|alpha| SweepPoint {
                x: format!("{alpha:.1}"),
                tag: format!("alpha={alpha:.1}"),
                cores: 4,
                power: PolynomialPower::paper(alpha, 0.0),
                config: GeneratorConfig::paper_default(),
            })
            .collect(),
    }
}

/// Run the sweep; returns `(x labels, NEC rows)`.
pub fn run_stats(trials: usize, base_seed: u64) -> (Vec<String>, Vec<NecPoint>, Vec<NecPoint>) {
    spec().run_stats(trials, base_seed)
}

/// [`run_stats`] that also assembles the per-trial [`RunReport`].
pub fn run_stats_reported(
    trials: usize,
    base_seed: u64,
) -> (Vec<String>, Vec<NecPoint>, Vec<NecPoint>, RunReport) {
    spec().run_stats_reported(trials, base_seed)
}

/// Run the sweep; returns `(x labels, mean NEC rows)`.
pub fn run(trials: usize, base_seed: u64) -> (Vec<String>, Vec<NecPoint>) {
    spec().run(trials, base_seed)
}

/// Run, print, and write artifacts.
pub fn run_and_report(trials: usize, base_seed: u64, outdir: &Path) -> String {
    spec().run_and_report(trials, base_seed, outdir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_eleven_points() {
        let a = alpha_values();
        assert_eq!(a.len(), 11);
        assert_eq!(a[0], 2.0);
        assert!((a[10] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn even_method_degrades_as_alpha_grows() {
        // Fig. 7's headline: I1/F1 blow up with α while I2/F2 stay low.
        // Check the endpoints with a reduced trial count.
        let (_, rows) = run(3, 7);
        let first = &rows[0]; // α = 2.0
        let last = &rows[10]; // α = 3.0
        assert!(
            last.i1 >= first.i1 - 0.05,
            "I1 did not grow: {} -> {}",
            first.i1,
            last.i1
        );
        // DER finals stay near optimal everywhere.
        for p in &rows {
            assert!(p.f2 < 1.4, "f2 = {}", p.f2);
        }
        // With p0 = 0 the ideal is a true lower bound.
        for p in &rows {
            assert!(p.ideal <= 1.0 + 1e-6, "ideal NEC {}", p.ideal);
        }
    }
}
