//! Figure 10 — NEC vs. number of tasks `n ∈ {5, 10, 15, 20, 25, 30, 35,
//! 40}` (`α = 3`, `p₀ = 0.2`, `m = 4`, intensity uniform `[0.1, 1]`,
//! 100 trials/point).

use crate::harness::{ExperimentSpec, SweepPoint};
use esched_core::NecPoint;
use esched_obs::RunReport;
use esched_types::PolynomialPower;
use esched_workload::{GeneratorConfig, IntensityDist};
use std::path::Path;

/// The swept task counts.
pub const TASK_COUNTS: [usize; 8] = [5, 10, 15, 20, 25, 30, 35, 40];

/// The sweep as a generic [`ExperimentSpec`].
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "fig10",
        table_x: "tasks",
        csv_x: "tasks",
        title: "Figure 10 — NEC vs task count (alpha=3, p0=0.2, m=4",
        points: TASK_COUNTS
            .into_iter()
            .map(|n| SweepPoint {
                x: n.to_string(),
                tag: format!("tasks={n}"),
                cores: 4,
                power: PolynomialPower::paper(3.0, 0.2),
                config: GeneratorConfig::paper_default()
                    .with_tasks(n)
                    .with_intensity(IntensityDist::Uniform { lo: 0.1, hi: 1.0 }),
            })
            .collect(),
    }
}

/// Run the sweep; returns `(x labels, NEC rows)`.
pub fn run_stats(trials: usize, base_seed: u64) -> (Vec<String>, Vec<NecPoint>, Vec<NecPoint>) {
    spec().run_stats(trials, base_seed)
}

/// [`run_stats`] that also assembles the per-trial [`RunReport`].
pub fn run_stats_reported(
    trials: usize,
    base_seed: u64,
) -> (Vec<String>, Vec<NecPoint>, Vec<NecPoint>, RunReport) {
    spec().run_stats_reported(trials, base_seed)
}

/// Run the sweep; returns `(x labels, mean NEC rows)`.
pub fn run(trials: usize, base_seed: u64) -> (Vec<String>, Vec<NecPoint>) {
    spec().run(trials, base_seed)
}

/// Run, print, and write artifacts.
pub fn run_and_report(trials: usize, base_seed: u64, outdir: &Path) -> String {
    spec().run_and_report(trials, base_seed, outdir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_counts_are_swept() {
        assert_eq!(TASK_COUNTS.len(), 8);
        assert_eq!(spec().points.len(), 8);
    }

    #[test]
    fn few_tasks_mean_few_heavy_intervals() {
        // With n = 5 on 4 cores almost nothing is heavy → every method is
        // near the ideal; with n = 40 contention appears and F2 still
        // tracks the optimum.
        let (_, rows) = run(3, 77);
        assert!(rows[0].f2 < 1.1, "n=5 f2 = {}", rows[0].f2);
        assert!(rows[7].f2 < 1.5, "n=40 f2 = {}", rows[7].f2);
    }
}
