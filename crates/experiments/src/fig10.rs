//! Figure 10 — NEC vs. number of tasks `n ∈ {5, 10, 15, 20, 25, 30, 35,
//! 40}` (`α = 3`, `p₀ = 0.2`, `m = 4`, intensity uniform `[0.1, 1]`,
//! 100 trials/point).

use crate::harness::{nec_stats_reported, TrialSpec};
use crate::report::{nec_csv_with_std, nec_table, write_artifact};
use esched_core::NecPoint;
use esched_obs::{RunReport, Value};
use esched_types::PolynomialPower;
use esched_workload::{GeneratorConfig, IntensityDist};
use std::path::Path;

/// The swept task counts.
pub const TASK_COUNTS: [usize; 8] = [5, 10, 15, 20, 25, 30, 35, 40];

/// Run the sweep; returns `(x labels, NEC rows)`.
pub fn run_stats(trials: usize, base_seed: u64) -> (Vec<String>, Vec<NecPoint>, Vec<NecPoint>) {
    let (xs, rows, stds, _) = run_stats_reported(trials, base_seed);
    (xs, rows, stds)
}

/// [`run_stats`] that also assembles the per-trial [`RunReport`].
pub fn run_stats_reported(
    trials: usize,
    base_seed: u64,
) -> (Vec<String>, Vec<NecPoint>, Vec<NecPoint>, RunReport) {
    let mut report = RunReport::new("fig10")
        .with_meta("trials_per_point", Value::Num(trials as f64))
        .with_meta("base_seed", Value::Num(base_seed as f64));
    let mut xs = Vec::new();
    let mut rows = Vec::new();
    let mut stds = Vec::new();
    for n in TASK_COUNTS {
        let spec = TrialSpec {
            cores: 4,
            power: PolynomialPower::paper(3.0, 0.2),
            config: GeneratorConfig::paper_default()
                .with_tasks(n)
                .with_intensity(IntensityDist::Uniform { lo: 0.1, hi: 1.0 }),
            trials,
            base_seed,
        };
        xs.push(n.to_string());
        let (mean, std) = nec_stats_reported(&spec, &format!("tasks={n}"), &mut report);
        rows.push(mean);
        stds.push(std);
    }
    (xs, rows, stds, report)
}

/// Run the sweep; returns `(x labels, mean NEC rows)`.
pub fn run(trials: usize, base_seed: u64) -> (Vec<String>, Vec<NecPoint>) {
    let (xs, rows, _) = run_stats(trials, base_seed);
    (xs, rows)
}

/// Run, print, and write artifacts.
pub fn run_and_report(trials: usize, base_seed: u64, outdir: &Path) -> String {
    let (xs, rows, stds, report) = run_stats_reported(trials, base_seed);
    let table = nec_table("tasks", &xs, &rows);
    let _ = write_artifact(
        outdir,
        "fig10.csv",
        &nec_csv_with_std("tasks", &xs, &rows, &stds),
    );
    let _ = report.write_to_dir(outdir);
    format!("Figure 10 — NEC vs task count (alpha=3, p0=0.2, m=4, {trials} trials)\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_counts_are_swept() {
        assert_eq!(TASK_COUNTS.len(), 8);
    }

    #[test]
    fn few_tasks_mean_few_heavy_intervals() {
        // With n = 5 on 4 cores almost nothing is heavy → every method is
        // near the ideal; with n = 40 contention appears and F2 still
        // tracks the optimum.
        let (_, rows) = run(3, 77);
        assert!(rows[0].f2 < 1.1, "n=5 f2 = {}", rows[0].f2);
        assert!(rows[7].f2 < 1.5, "n=40 f2 = {}", rows[7].f2);
    }
}
