//! Observability smoke test: run a batch through the engine with the
//! continuous exporter sampling, then assert every emitted artifact is
//! well-formed. CI runs this twice — once clean, once with `--panic` to
//! poison one job and check the post-mortem flight dump appears.
//!
//! ```text
//! obs_smoke [--out DIR] [--jobs N] [--panic]
//! ```
//!
//! Exit code is non-zero when any assertion fails, so the CI job is just
//! an invocation.

use esched_engine::{Engine, EngineConfig, ScheduleRequest};
use esched_obs::json::{parse, Value};
use esched_obs::{Exporter, ExporterConfig};
use esched_opt::{SolveOptions, SolverKind};
use esched_types::PolynomialPower;
use esched_workload::{GeneratorConfig, WorkloadGenerator};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    out: PathBuf,
    jobs: usize,
    poison: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        out: PathBuf::from("obs-smoke"),
        jobs: 256,
        poison: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--panic" => parsed.poison = true,
            "--out" => {
                parsed.out = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--jobs" => {
                parsed.jobs = args
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            other => {
                return Err(format!(
                    "unknown flag {other}\nusage: obs_smoke [--out DIR] [--jobs N] [--panic]"
                ))
            }
        }
    }
    Ok(parsed)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("obs_smoke: FAIL: {msg}");
    ExitCode::FAILURE
}

fn check_jsonl(path: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lines = 0usize;
    for (k, line) in text.lines().enumerate() {
        let v = parse(line).map_err(|e| format!("{} line {}: {e:?}", path.display(), k + 1))?;
        for key in ["seq", "unix_ms", "elapsed_s", "metrics"] {
            if v.get(key).is_none() {
                return Err(format!(
                    "{} line {}: missing {key:?}",
                    path.display(),
                    k + 1
                ));
            }
        }
        lines += 1;
    }
    Ok(lines)
}

fn check_prom(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if !text.contains("# TYPE") {
        return Err(format!("{}: no # TYPE lines", path.display()));
    }
    if !text.contains("esched_engine_jobs") {
        return Err(format!("{}: missing esched_engine_jobs", path.display()));
    }
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((_, num)) = line.rsplit_once(' ') else {
            return Err(format!(
                "{}: malformed sample line {line:?}",
                path.display()
            ));
        };
        if num.parse::<f64>().is_err() {
            return Err(format!("{}: non-numeric sample {line:?}", path.display()));
        }
    }
    Ok(())
}

fn find_postmortem(dir: &Path) -> Option<PathBuf> {
    std::fs::read_dir(dir).ok()?.find_map(|entry| {
        let path = entry.ok()?.path();
        let name = path.file_name()?.to_str()?;
        (name.starts_with("flight-postmortem-") && name.ends_with(".json")).then_some(path)
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        return fail(&format!("create {}: {e}", args.out.display()));
    }
    if args.poison {
        // Route the engine's panic-path dump into the smoke directory.
        std::env::set_var("ESCHED_FLIGHT_DIR", &args.out);
    }

    let power = PolynomialPower::paper(3.0, 0.1);
    let mut requests: Vec<ScheduleRequest> = (0..args.jobs)
        .map(|k| {
            let tasks = WorkloadGenerator::new(
                GeneratorConfig::paper_default().with_tasks(16),
                9000 + k as u64,
            )
            .generate();
            ScheduleRequest::new(tasks, 4, power).with_config(
                EngineConfig::new()
                    .with_solver(SolverKind::ProjectedGradient)
                    .with_solve_options(SolveOptions::fast())
                    .with_sim_verify(true),
            )
        })
        .collect();
    if args.poison {
        // `cores == 0` trips the execute() assert inside the pool: the
        // job fails, the batch survives, and the flight recorder dumps.
        requests[args.jobs / 2].cores = 0;
    }

    let exporter = match Exporter::start(ExporterConfig::into_dir(
        &args.out,
        Duration::from_millis(50),
    )) {
        Ok(e) => e,
        Err(e) => return fail(&format!("exporter start: {e}")),
    };
    let engine = Engine::new();
    let results = engine.run_batch(&requests);
    // Let the sampler take at least one mid-run snapshot before stopping.
    std::thread::sleep(Duration::from_millis(120));
    let lines = match exporter.stop() {
        Ok(n) => n,
        Err(e) => return fail(&format!("exporter stop: {e}")),
    };

    let failures = results.iter().filter(|r| r.is_err()).count();
    let expected_failures = usize::from(args.poison);
    if failures != expected_failures {
        return fail(&format!(
            "{failures} failed jobs, expected {expected_failures}"
        ));
    }
    if lines < 2 {
        return fail(&format!("exporter wrote only {lines} samples"));
    }
    let jsonl = args.out.join("metrics.jsonl");
    match check_jsonl(&jsonl) {
        Ok(n) if n as u64 == lines => {}
        Ok(n) => {
            return fail(&format!(
                "{n} JSONL lines on disk, exporter reported {lines}"
            ))
        }
        Err(e) => return fail(&e),
    }
    if let Err(e) = check_prom(&args.out.join("metrics.prom")) {
        return fail(&e);
    }
    if args.poison {
        let Some(path) = find_postmortem(&args.out) else {
            return fail("no flight-postmortem-*.json after poisoned job");
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("{}: {e}", path.display())),
        };
        let doc = match parse(&text) {
            Ok(d) => d,
            Err(e) => return fail(&format!("{}: {e:?}", path.display())),
        };
        let n_events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .map(<[Value]>::len)
            .unwrap_or(0);
        if n_events == 0 {
            return fail(&format!("{}: empty traceEvents", path.display()));
        }
        println!(
            "obs_smoke: post-mortem {} ({n_events} events)",
            path.display()
        );
    }
    println!(
        "obs_smoke: OK — {} jobs, {lines} exporter samples, artifacts in {}",
        args.jobs,
        args.out.display()
    );
    let _ = esched_obs::recorder::dump_at_exit_if_requested();
    ExitCode::SUCCESS
}
