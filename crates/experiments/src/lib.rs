//! # esched-experiments
//!
//! Regenerates every table and figure of the paper's evaluation section
//! (Section VI):
//!
//! | module     | paper artifact |
//! |------------|----------------|
//! | [`worked`] | Fig. 1-2 (YDS + two-core optimum), Section V.D example, Section VI.D core-count sweep |
//! | [`fig6`]   | Fig. 6 — NEC vs static power |
//! | [`fig7`]   | Fig. 7 — NEC vs dynamic exponent α |
//! | [`fig8`]   | Fig. 8 — NEC vs core count |
//! | [`fig9`]   | Fig. 9 — NEC vs intensity range |
//! | [`fig10`]  | Fig. 10 — NEC vs task count |
//! | [`fig11`]  | Fig. 11 — XScale discrete-frequency NEC + deadline misses |
//! | [`table2`] | Table II — F1/F2 NEC over the (α, p₀) grid |
//! | [`ablate`] | design-choice ablations (allocation rule, baselines, online dispatch, quantization) |
//!
//! The `esched-experiments` binary exposes each as a subcommand; every run
//! prints an aligned table and writes a CSV artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablate;
pub mod fig10;
pub mod fig11;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod harness;
pub mod report;
pub mod solvers;
pub mod table2;
pub mod worked;
