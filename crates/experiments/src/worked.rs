//! The paper's worked examples, reproduced end-to-end:
//!
//! * Section I.B / Fig. 1-2 — YDS on the three-task instance, and the
//!   Section II two-core KKT optimum,
//! * Section V.D / Fig. 4-5 — the six-task quad-core example with both
//!   allocation methods,
//! * Section VI.D — core-count selection.

use esched_core::{
    allocate, der_schedule, even_schedule, ideal_schedule, optimal_energy, select_core_count,
    yds_schedule, AllocRequest, Method,
};
use esched_opt::SolveOptions;
use esched_sim::{ascii_gantt, simulate, task_summary};
use esched_subinterval::Timeline;
use esched_types::PolynomialPower;
use esched_workload::{intro_three_tasks, section_vd_six_tasks};
use std::fmt::Write as _;

/// Reproduce Fig. 1-2: YDS on the introductory tasks plus the two-core
/// optimum of Section II.
pub fn fig2_report() -> String {
    let tasks = intro_three_tasks();
    let mut out = String::new();

    let _ = writeln!(out, "Fig. 2(a) — YDS on a uniprocessor, p(f) = f^3:");
    let yds = yds_schedule(&tasks, &PolynomialPower::cubic());
    let _ = writeln!(
        out,
        "  rounds = {}, speeds = {:?}",
        yds.rounds,
        yds.speed
            .iter()
            .map(|f| (f * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    out.push_str(&ascii_gantt(&yds.schedule, 0.0, 12.0, 48));
    out.push_str(&task_summary(&yds.schedule));

    let _ = writeln!(
        out,
        "\nFig. 2(b) — optimal two-core schedule, p(f) = f^3 + 0.01:"
    );
    let p = PolynomialPower::paper(3.0, 0.01);
    let opt = optimal_energy(&tasks, 2, &p, &SolveOptions::precise());
    let _ = writeln!(
        out,
        "  E^OPT = {:.6} (paper: 155/32 + 0.2 = {:.6}), per-task X = {:?}",
        opt.energy,
        155.0 / 32.0 + 0.2,
        opt.total_times
            .iter()
            .map(|x| (x * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    out.push_str(&ascii_gantt(&opt.schedule, 0.0, 12.0, 48));

    // Execute the optimal schedule on the simulator as a cross-check.
    let sim = simulate(&opt.schedule, &tasks, &p);
    let _ = writeln!(
        out,
        "  simulator: energy = {:.6}, clean = {}",
        sim.energy,
        sim.is_clean()
    );
    out
}

/// Reproduce the Section V.D example: allocations, final frequencies, and
/// the energies 33.0642 / 31.8362.
pub fn example_vd_report() -> String {
    let tasks = section_vd_six_tasks();
    let p = PolynomialPower::cubic();
    let timeline = Timeline::build(&tasks);
    let ideal = ideal_schedule(&tasks, &p);
    let mut out = String::new();

    let _ = writeln!(out, "Section V.D — six tasks on a quad-core, p(f) = f^3");
    let heavy = timeline.heavy_indices(4);
    let _ = writeln!(
        out,
        "  heavy subintervals: {:?}",
        heavy
            .iter()
            .map(|&j| {
                let iv = &timeline.get(j).interval;
                (iv.start, iv.end)
            })
            .collect::<Vec<_>>()
    );

    let avail = allocate(AllocRequest::new(&tasks, &timeline, 4, &ideal));
    for &j in &heavy {
        let iv = &timeline.get(j).interval;
        let _ = writeln!(out, "  DER allocations in [{}, {}]:", iv.start, iv.end);
        for &i in &timeline.get(j).overlapping {
            let _ = writeln!(out, "    task {i}: {:.4}", avail.get(i, j));
        }
    }

    let even = even_schedule(&tasks, 4, &p);
    let der = der_schedule(&tasks, 4, &p);
    let _ = writeln!(
        out,
        "  E^F1 = {:.4} (paper 33.0642)   E^F2 = {:.4} (paper 31.8362)",
        even.final_energy, der.final_energy
    );
    let _ = writeln!(
        out,
        "  final F2 frequencies: {:?}",
        der.assignment
            .freq
            .iter()
            .map(|f| (f * 10000.0).round() / 10000.0)
            .collect::<Vec<_>>()
    );
    out.push_str("  final F2 schedule:\n");
    out.push_str(&ascii_gantt(&der.schedule, 0.0, 22.0, 66));

    // Cross-check on the simulator.
    let sim = simulate(&der.schedule, &tasks, &p);
    let _ = writeln!(
        out,
        "  simulator: energy = {:.4}, clean = {}",
        sim.energy,
        sim.is_clean()
    );
    out
}

/// Section VI.D — core-count selection on the V.D instance with static
/// power (where fewer cores can win).
pub fn corecount_report() -> String {
    let tasks = section_vd_six_tasks();
    let mut out = String::new();
    for (label, p) in [
        ("p(f) = f^3 (no static power)", PolynomialPower::cubic()),
        ("p(f) = f^3 + 0.2", PolynomialPower::paper(3.0, 0.2)),
    ] {
        let choice = select_core_count(&tasks, 8, &p, Method::Der);
        let _ = writeln!(out, "Core-count sweep, {label}:");
        for (m, e) in &choice.sweep {
            let marker = if *m == choice.best { "  <-- best" } else { "" };
            let _ = writeln!(out, "  m = {m}: E^F2 = {e:.4}{marker}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_report_contains_key_numbers() {
        let r = fig2_report();
        assert!(r.contains("rounds = 2"));
        assert!(r.contains("E^OPT = 5.04"), "{r}");
        assert!(r.contains("clean = true"));
    }

    #[test]
    fn vd_report_contains_paper_energies() {
        let r = example_vd_report();
        assert!(r.contains("E^F1 = 33.06"), "{r}");
        assert!(r.contains("E^F2 = 31.83"), "{r}");
        assert!(r.contains("clean = true"));
    }

    #[test]
    fn corecount_report_runs() {
        let r = corecount_report();
        assert!(r.contains("<-- best"));
    }
}
