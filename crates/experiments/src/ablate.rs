//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Four questions, each answered over seeded Monte-Carlo trials:
//!
//! 1. **Allocation rule** — how much of `S^F2`'s advantage comes from the
//!    DER weighting vs. the cap-and-redistribute loop vs. plain even
//!    splitting? Compares F2 (full Algorithm 2), F2 without
//!    redistribution, work-proportional shares, and F1.
//! 2. **Baselines** — where do the simpler deployable schemes land:
//!    partitioned YDS (no migration) and single uniform frequency?
//! 3. **Online dispatch** — can a greedy runtime (global EDF / LLF)
//!    realize the `S^F2` frequency assignment without the Algorithm-1
//!    table? Reports deadline-miss probabilities.
//! 4. **Quantization policy** — next-level-up vs. best-efficiency level
//!    selection on the XScale table.

use crate::harness::per_trial;
use crate::report::write_artifact;
use esched_core::{
    allocate, allocate_work_proportional, build_outcome, der_schedule, even_schedule,
    ideal_schedule, no_reclaim_energy, optimal_energy, partitioned_yds, quantize_schedule,
    reclaim_der, replan_der, uniform_frequency, AllocRequest, DerStrategy, QuantizePolicy,
};
use esched_opt::SolveOptions;
use esched_subinterval::Timeline;
use esched_types::{PolynomialPower, TaskSet};
use esched_workload::{xscale_discrete, xscale_paper_fit, GeneratorConfig};
use std::fmt::Write as _;
use std::path::Path;

/// Mean NEC of the allocation-rule variants.
#[derive(Debug, Clone, Copy)]
pub struct AllocationAblation {
    /// Full Algorithm 2 (`S^F2`).
    pub der: f64,
    /// Algorithm 2 without redistribution.
    pub der_no_redist: f64,
    /// Shares proportional to `C_i`.
    pub work_prop: f64,
    /// Even split (`S^F1`).
    pub even: f64,
}

/// Run the allocation-rule ablation.
pub fn allocation_ablation(trials: usize, base_seed: u64) -> AllocationAblation {
    let power = PolynomialPower::paper(3.0, 0.1);
    let cores = 4;
    let rows = per_trial(
        GeneratorConfig::paper_default(),
        trials,
        base_seed,
        |_seed, tasks| {
            let tl = Timeline::build(&tasks);
            let ideal = ideal_schedule(&tasks, &power);
            let opt = optimal_energy(&tasks, cores, &power, &SolveOptions::fast()).energy;
            let f2 = build_outcome(
                &tasks,
                &tl,
                cores,
                &power,
                &ideal,
                allocate(AllocRequest::new(&tasks, &tl, cores, &ideal)),
            )
            .final_energy;
            let nr = build_outcome(
                &tasks,
                &tl,
                cores,
                &power,
                &ideal,
                allocate(
                    AllocRequest::new(&tasks, &tl, cores, &ideal)
                        .strategy(DerStrategy::NoRedistribution),
                ),
            )
            .final_energy;
            let wp = build_outcome(
                &tasks,
                &tl,
                cores,
                &power,
                &ideal,
                allocate_work_proportional(&tasks, &tl, cores),
            )
            .final_energy;
            let f1 = even_schedule(&tasks, cores, &power).final_energy;
            [f2 / opt, nr / opt, wp / opt, f1 / opt]
        },
    );
    let n = rows.len() as f64;
    let mut acc = [0.0; 4];
    for r in &rows {
        for k in 0..4 {
            acc[k] += r[k] / n;
        }
    }
    AllocationAblation {
        der: acc[0],
        der_no_redist: acc[1],
        work_prop: acc[2],
        even: acc[3],
    }
}

/// Mean NEC of the deployable baselines (plus F2 for reference).
#[derive(Debug, Clone, Copy)]
pub struct BaselineAblation {
    /// `S^F2`.
    pub der: f64,
    /// Partitioned YDS (worst-fit by intensity, per-core YDS).
    pub partitioned_yds: f64,
    /// Uniform minimum feasible frequency.
    pub uniform: f64,
}

/// Run the baseline comparison. Uses `p₀ = 0` so per-core YDS is optimal
/// on its partition — the fairest setting for the partitioned baseline.
pub fn baseline_ablation(trials: usize, base_seed: u64) -> BaselineAblation {
    let power = PolynomialPower::cubic();
    let cores = 4;
    let rows = per_trial(
        GeneratorConfig::paper_default(),
        trials,
        base_seed,
        |_seed, tasks| {
            let opt = optimal_energy(&tasks, cores, &power, &SolveOptions::fast()).energy;
            let f2 = der_schedule(&tasks, cores, &power).final_energy;
            let part = partitioned_yds(&tasks, cores, &power).energy;
            let uni = uniform_frequency(&tasks, cores, &power).energy;
            [f2 / opt, part / opt, uni / opt]
        },
    );
    let n = rows.len() as f64;
    let mut acc = [0.0; 3];
    for r in &rows {
        for k in 0..3 {
            acc[k] += r[k] / n;
        }
    }
    BaselineAblation {
        der: acc[0],
        partitioned_yds: acc[1],
        uniform: acc[2],
    }
}

/// Online-dispatch miss probabilities at `S^F2` frequencies.
#[derive(Debug, Clone, Copy)]
pub struct OnlineAblation {
    /// Fraction of trials where global EDF missed at least one deadline.
    pub edf_miss_prob: f64,
    /// Fraction for LLF (with subinterval-boundary epochs).
    pub llf_miss_prob: f64,
    /// The offline packing's miss probability (always 0 — asserted, then
    /// reported for the table).
    pub offline_miss_prob: f64,
}

/// Run the online-dispatch ablation.
pub fn online_ablation(trials: usize, base_seed: u64) -> OnlineAblation {
    use esched_sim::{dispatch, DispatchPolicy};
    let power = PolynomialPower::paper(3.0, 0.1);
    let cores = 4;
    let rows = per_trial(
        GeneratorConfig::paper_default(),
        trials,
        base_seed,
        |_seed, tasks: TaskSet| {
            let der = der_schedule(&tasks, cores, &power);
            let epochs = Timeline::build(&tasks).boundaries().to_vec();
            let edf = dispatch(
                &tasks,
                cores,
                &der.assignment.freq,
                DispatchPolicy::Edf,
                &[],
            );
            let llf = dispatch(
                &tasks,
                cores,
                &der.assignment.freq,
                DispatchPolicy::Llf,
                &epochs,
            );
            let offline_ok = esched_types::validate_schedule(&der.schedule, &tasks).is_legal();
            (!edf.misses.is_empty(), !llf.misses.is_empty(), !offline_ok)
        },
    );
    let n = rows.len() as f64;
    OnlineAblation {
        edf_miss_prob: rows.iter().filter(|r| r.0).count() as f64 / n,
        llf_miss_prob: rows.iter().filter(|r| r.1).count() as f64 / n,
        offline_miss_prob: rows.iter().filter(|r| r.2).count() as f64 / n,
    }
}

/// Quantization-policy energies (mean, XScale config).
#[derive(Debug, Clone, Copy)]
pub struct QuantizeAblation {
    /// Mean quantized energy, next-level-up.
    pub next_up: f64,
    /// Mean quantized energy, best-efficiency level.
    pub best_efficiency: f64,
}

/// Run the quantization-policy ablation on the XScale configuration.
pub fn quantize_ablation(trials: usize, base_seed: u64) -> QuantizeAblation {
    let power = xscale_paper_fit();
    let table = xscale_discrete();
    let rows = per_trial(
        GeneratorConfig::xscale_default(),
        trials,
        base_seed,
        |_seed, tasks| {
            let der = der_schedule(&tasks, 4, &power);
            let a = quantize_schedule(&der.schedule, &table, QuantizePolicy::NextUp).energy;
            let b = quantize_schedule(&der.schedule, &table, QuantizePolicy::BestEfficiency).energy;
            (a, b)
        },
    );
    let n = rows.len() as f64;
    QuantizeAblation {
        next_up: rows.iter().map(|r| r.0).sum::<f64>() / n,
        best_efficiency: rows.iter().map(|r| r.1).sum::<f64>() / n,
    }
}

/// Wake-up overhead sensitivity: how many core activations each schedule
/// shape incurs, and where the energy ordering flips as the per-wakeup
/// cost grows (the transition-overhead extension; the base model's
/// zero-cost sleep is the paper's assumption).
#[derive(Debug, Clone, Copy)]
pub struct WakeupAblation {
    /// Mean core activations, offline F2 packing.
    pub f2_activations: f64,
    /// Mean core activations, offline F1 packing.
    pub f1_activations: f64,
    /// Mean activations when the same F2 frequencies are dispatched
    /// online by LLF (finer-grained slicing → more wake-ups).
    pub llf_activations: f64,
    /// Per-activation wake-up cost at which offline-F2-with-overhead
    /// equals 5% of its base energy (a scale reference for the numbers
    /// above): `0.05 · E_base / activations`.
    pub breakeven_cost: f64,
}

/// Run the wake-up ablation.
pub fn wakeup_ablation(trials: usize, base_seed: u64) -> WakeupAblation {
    use esched_sim::{dispatch, simulate, DispatchPolicy};
    let power = PolynomialPower::paper(3.0, 0.1);
    let rows = per_trial(
        GeneratorConfig::paper_default(),
        trials,
        base_seed,
        |_seed, tasks| {
            let der = der_schedule(&tasks, 4, &power);
            let even = even_schedule(&tasks, 4, &power);
            let epochs = Timeline::build(&tasks).boundaries().to_vec();
            let llf = dispatch(
                &tasks,
                4,
                &der.assignment.freq,
                DispatchPolicy::Llf,
                &epochs,
            );
            let sim2 = simulate(&der.schedule, &tasks, &power);
            let sim1 = simulate(&even.schedule, &tasks, &power);
            let sim_llf = simulate(&llf.schedule, &tasks, &power);
            let act2: usize = sim2.activations.iter().sum();
            (
                act2 as f64,
                sim1.activations.iter().sum::<usize>() as f64,
                sim_llf.activations.iter().sum::<usize>() as f64,
                0.05 * sim2.energy / act2.max(1) as f64,
            )
        },
    );
    let n = rows.len() as f64;
    WakeupAblation {
        f2_activations: rows.iter().map(|r| r.0).sum::<f64>() / n,
        f1_activations: rows.iter().map(|r| r.1).sum::<f64>() / n,
        llf_activations: rows.iter().map(|r| r.2).sum::<f64>() / n,
        breakeven_cost: rows.iter().map(|r| r.3).sum::<f64>() / n,
    }
}

/// Price of non-clairvoyance: offline `S^F2` (all tasks known) vs.
/// event-driven DER replanning (tasks revealed at their releases).
#[derive(Debug, Clone, Copy)]
pub struct ReplanAblation {
    /// Mean energy ratio replanning / offline (≥ 1).
    pub energy_ratio: f64,
    /// Mean peak frequency ratio replanning / offline.
    pub peak_freq_ratio: f64,
    /// Fraction of trials with any deadline miss under replanning
    /// (0 in the continuous-frequency model).
    pub miss_prob: f64,
}

/// Run the replanning ablation.
pub fn replan_ablation(trials: usize, base_seed: u64) -> ReplanAblation {
    let power = PolynomialPower::paper(3.0, 0.1);
    let cores = 4;
    let rows = per_trial(
        GeneratorConfig::paper_default(),
        trials,
        base_seed,
        |_seed, tasks| {
            let offline = der_schedule(&tasks, cores, &power);
            let online = replan_der(&tasks, cores, &power);
            let offline_peak = offline
                .assignment
                .freq
                .iter()
                .cloned()
                .fold(0.0_f64, f64::max);
            (
                online.energy / offline.final_energy,
                online.peak_frequency / offline_peak,
                !online.misses.is_empty(),
            )
        },
    );
    let n = rows.len() as f64;
    ReplanAblation {
        energy_ratio: rows.iter().map(|r| r.0).sum::<f64>() / n,
        peak_freq_ratio: rows.iter().map(|r| r.1).sum::<f64>() / n,
        miss_prob: rows.iter().filter(|r| r.2).count() as f64 / n,
    }
}

/// Slack reclamation: when actual work is a fraction of the WCEC, how
/// much of the gap between "run the WCEC plan" and "clairvoyant for the
/// actuals" does completion-driven replanning recover?
#[derive(Debug, Clone, Copy)]
pub struct ReclaimAblation {
    /// Mean energy of the WCEC plan truncated at actual completions,
    /// normalized by the clairvoyant-for-actuals plan.
    pub no_reclaim: f64,
    /// Mean energy with completion-driven reclamation, same normalization.
    pub reclaim: f64,
}

/// Run the reclamation ablation with actual work = 50% of WCEC.
pub fn reclaim_ablation(trials: usize, base_seed: u64) -> ReclaimAblation {
    let power = PolynomialPower::paper(3.0, 0.1);
    let cores = 4;
    let rows = per_trial(
        GeneratorConfig::paper_default(),
        trials,
        base_seed,
        |_seed, tasks: TaskSet| {
            let actual: Vec<f64> = tasks.tasks().iter().map(|t| 0.5 * t.wcec).collect();
            let clair_tasks = TaskSet::new(
                tasks
                    .tasks()
                    .iter()
                    .zip(&actual)
                    .map(|(t, &a)| esched_types::Task::of(t.release, t.deadline, a))
                    .collect(),
            )
            .expect("halved works stay valid");
            let clair = der_schedule(&clair_tasks, cores, &power).final_energy;
            let without = no_reclaim_energy(&tasks, &actual, cores, &power);
            let with = reclaim_der(&tasks, &actual, cores, &power).energy;
            (without / clair, with / clair)
        },
    );
    let n = rows.len() as f64;
    ReclaimAblation {
        no_reclaim: rows.iter().map(|r| r.0).sum::<f64>() / n,
        reclaim: rows.iter().map(|r| r.1).sum::<f64>() / n,
    }
}

/// Run everything and render the report.
pub fn run_and_report(trials: usize, base_seed: u64, outdir: &Path) -> String {
    let alloc = allocation_ablation(trials, base_seed);
    let base = baseline_ablation(trials, base_seed);
    let online = online_ablation(trials, base_seed);
    let quant = quantize_ablation(trials, base_seed);
    let wake = wakeup_ablation(trials, base_seed);
    let replan = replan_ablation(trials, base_seed);
    let reclaim = reclaim_ablation(trials, base_seed);

    let mut out = String::new();
    let _ = writeln!(out, "Ablations ({trials} trials each, m=4, n=20)");
    let _ = writeln!(out, "\n1. Allocation rule (mean NEC, alpha=3, p0=0.1):");
    let _ = writeln!(out, "   DER (Algorithm 2, S^F2):      {:.4}", alloc.der);
    let _ = writeln!(
        out,
        "   DER without redistribution:   {:.4}",
        alloc.der_no_redist
    );
    let _ = writeln!(
        out,
        "   work-proportional shares:     {:.4}",
        alloc.work_prop
    );
    let _ = writeln!(out, "   even split (S^F1):            {:.4}", alloc.even);
    let _ = writeln!(out, "\n2. Deployable baselines (mean NEC, p(f)=f^3):");
    let _ = writeln!(out, "   S^F2 (global, migrating):     {:.4}", base.der);
    let _ = writeln!(
        out,
        "   partitioned YDS:              {:.4}",
        base.partitioned_yds
    );
    let _ = writeln!(out, "   uniform min-feasible freq:    {:.4}", base.uniform);
    let _ = writeln!(
        out,
        "\n3. Online dispatch of S^F2 frequencies (miss probability):"
    );
    let _ = writeln!(
        out,
        "   offline Algorithm-1 packing:  {:.3}",
        online.offline_miss_prob
    );
    let _ = writeln!(
        out,
        "   global EDF:                   {:.3}",
        online.edf_miss_prob
    );
    let _ = writeln!(
        out,
        "   LLF @ subinterval epochs:     {:.3}",
        online.llf_miss_prob
    );
    let _ = writeln!(out, "\n4. XScale quantization policy (mean energy, mW*s):");
    let _ = writeln!(out, "   next level up:                {:.1}", quant.next_up);
    let _ = writeln!(
        out,
        "   best-efficiency level:        {:.1}",
        quant.best_efficiency
    );
    let _ = writeln!(
        out,
        "\n5. Wake-up overhead (mean core activations per run):"
    );
    let _ = writeln!(
        out,
        "   offline F2 packing:           {:.1}",
        wake.f2_activations
    );
    let _ = writeln!(
        out,
        "   offline F1 packing:           {:.1}",
        wake.f1_activations
    );
    let _ = writeln!(
        out,
        "   online LLF dispatch:          {:.1}",
        wake.llf_activations
    );
    let _ = writeln!(
        out,
        "   per-wakeup cost worth 5% of F2 base energy: {:.4}",
        wake.breakeven_cost
    );
    let _ = writeln!(
        out,
        "\n6. Price of non-clairvoyance (replanning vs offline F2):"
    );
    let _ = writeln!(
        out,
        "   energy ratio:                 {:.4}",
        replan.energy_ratio
    );
    let _ = writeln!(
        out,
        "   peak-frequency ratio:         {:.4}",
        replan.peak_freq_ratio
    );
    let _ = writeln!(
        out,
        "   P(miss):                      {:.3}",
        replan.miss_prob
    );
    let _ = writeln!(
        out,
        "\n7. Slack reclamation (actual work = 50% of WCEC; energy vs clairvoyant-for-actuals):"
    );
    let _ = writeln!(
        out,
        "   WCEC plan, no reclamation:    {:.4}",
        reclaim.no_reclaim
    );
    let _ = writeln!(
        out,
        "   completion-driven replanning: {:.4}",
        reclaim.reclaim
    );

    let csv = format!(
        "metric,value\nalloc_der,{:.6}\nalloc_der_no_redist,{:.6}\nalloc_work_prop,{:.6}\n\
         alloc_even,{:.6}\nbase_der,{:.6}\nbase_partitioned_yds,{:.6}\nbase_uniform,{:.6}\n\
         online_offline_miss,{:.6}\nonline_edf_miss,{:.6}\nonline_llf_miss,{:.6}\n\
         quant_next_up,{:.6}\nquant_best_eff,{:.6}\nwake_f2_act,{:.3}\nwake_f1_act,{:.3}\n\
         wake_llf_act,{:.3}\nwake_breakeven,{:.6}\nreplan_energy_ratio,{:.6}\n\
         replan_peak_ratio,{:.6}\nreplan_miss_prob,{:.6}\nreclaim_without,{:.6}\n\
         reclaim_with,{:.6}\n",
        alloc.der,
        alloc.der_no_redist,
        alloc.work_prop,
        alloc.even,
        base.der,
        base.partitioned_yds,
        base.uniform,
        online.offline_miss_prob,
        online.edf_miss_prob,
        online.llf_miss_prob,
        quant.next_up,
        quant.best_efficiency,
        wake.f2_activations,
        wake.f1_activations,
        wake.llf_activations,
        wake.breakeven_cost,
        replan.energy_ratio,
        replan.peak_freq_ratio,
        replan.miss_prob,
        reclaim.no_reclaim,
        reclaim.reclaim
    );
    let _ = write_artifact(outdir, "ablate.csv", &csv);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_ablation_orders_sanely() {
        let a = allocation_ablation(4, 321);
        // Full DER ≤ no-redistribution (stranded capacity can only hurt).
        assert!(a.der <= a.der_no_redist + 1e-9, "{a:?}");
        // Everything beats nothing: all ≥ ~1.
        for v in [a.der, a.der_no_redist, a.work_prop, a.even] {
            assert!(v >= 0.999, "{v}");
        }
        // DER is the best of the four rules on average.
        assert!(a.der <= a.work_prop + 1e-9);
        assert!(a.der <= a.even + 1e-9);
    }

    #[test]
    fn baseline_ablation_orders_sanely() {
        let b = baseline_ablation(4, 654);
        assert!(b.der >= 0.999);
        // The smart heuristic beats both deployable baselines on average.
        assert!(b.der <= b.partitioned_yds + 1e-9, "{b:?}");
        assert!(b.der <= b.uniform + 1e-9, "{b:?}");
    }

    #[test]
    fn online_ablation_offline_never_misses() {
        let o = online_ablation(4, 987);
        assert_eq!(o.offline_miss_prob, 0.0);
        assert!(o.edf_miss_prob <= 1.0 && o.llf_miss_prob <= 1.0);
    }

    #[test]
    fn quantize_ablation_best_efficiency_never_loses() {
        let q = quantize_ablation(4, 135);
        assert!(q.best_efficiency <= q.next_up + 1e-9, "{q:?}");
    }

    #[test]
    fn replan_ablation_ratio_at_least_one() {
        let r = replan_ablation(3, 852);
        assert!(r.energy_ratio >= 1.0 - 1e-9, "{r:?}");
        assert_eq!(r.miss_prob, 0.0);
        assert!(r.peak_freq_ratio > 0.0);
    }

    #[test]
    fn reclaim_ablation_orders_correctly() {
        let r = reclaim_ablation(3, 963);
        // Clairvoyant ≤ reclaiming ≤ not reclaiming.
        assert!(r.reclaim >= 1.0 - 1e-6, "{r:?}");
        assert!(r.reclaim <= r.no_reclaim + 1e-9, "{r:?}");
    }

    #[test]
    fn wakeup_ablation_counts_are_positive() {
        let w = wakeup_ablation(3, 246);
        assert!(w.f2_activations > 0.0);
        assert!(w.f1_activations > 0.0);
        assert!(w.llf_activations > 0.0);
        assert!(w.breakeven_cost > 0.0);
    }
}
