//! Figure 9 — NEC vs. task-intensity generation range
//! `[0.1,1], [0.2,1], …, [1.0,1.0]` (`α = 3`, `p₀ = 0.2`, `m = 4`,
//! `n = 20`, 100 trials/point).

use crate::harness::{ExperimentSpec, SweepPoint};
use esched_core::NecPoint;
use esched_obs::RunReport;
use esched_types::PolynomialPower;
use esched_workload::{GeneratorConfig, IntensityDist};
use std::path::Path;

/// The swept lower bounds of the intensity range.
pub fn intensity_lows() -> Vec<f64> {
    (1..=10).map(|k| 0.1 * k as f64).collect()
}

/// The sweep as a generic [`ExperimentSpec`].
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "fig9",
        table_x: "intensity",
        csv_x: "intensity_lo",
        title: "Figure 9 — NEC vs intensity range (alpha=3, p0=0.2, m=4, n=20",
        points: intensity_lows()
            .into_iter()
            .map(|lo| SweepPoint {
                x: format!("[{lo:.1},1]"),
                tag: format!("intensity_lo={lo:.1}"),
                cores: 4,
                power: PolynomialPower::paper(3.0, 0.2),
                config: GeneratorConfig::paper_default()
                    .with_intensity(IntensityDist::Uniform { lo, hi: 1.0 }),
            })
            .collect(),
    }
}

/// Run the sweep; returns `(x labels, NEC rows)`.
pub fn run_stats(trials: usize, base_seed: u64) -> (Vec<String>, Vec<NecPoint>, Vec<NecPoint>) {
    spec().run_stats(trials, base_seed)
}

/// [`run_stats`] that also assembles the per-trial [`RunReport`].
pub fn run_stats_reported(
    trials: usize,
    base_seed: u64,
) -> (Vec<String>, Vec<NecPoint>, Vec<NecPoint>, RunReport) {
    spec().run_stats_reported(trials, base_seed)
}

/// Run the sweep; returns `(x labels, mean NEC rows)`.
pub fn run(trials: usize, base_seed: u64) -> (Vec<String>, Vec<NecPoint>) {
    spec().run(trials, base_seed)
}

/// Run, print, and write artifacts.
pub fn run_and_report(trials: usize, base_seed: u64, outdir: &Path) -> String {
    spec().run_and_report(trials, base_seed, outdir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_ranges_are_swept() {
        assert_eq!(intensity_lows().len(), 10);
        assert_eq!(spec().points.len(), 10);
    }

    #[test]
    fn f2_is_stable_across_ranges() {
        // The paper: F2 stays flat while others fluctuate.
        let (_, rows) = run(3, 555);
        let f2s: Vec<f64> = rows.iter().map(|p| p.f2).collect();
        let min = f2s.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = f2s.iter().cloned().fold(0.0_f64, f64::max);
        assert!(max - min < 0.35, "F2 fluctuates too much: [{min}, {max}]");
        assert!(max < 1.5, "F2 max {max}");
    }
}
