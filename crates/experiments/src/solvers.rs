//! Solver study: convergence and agreement of the six solvers on the
//! energy program, at several instance sizes — three first-order methods
//! (projected gradient, FISTA, Frank–Wolfe), the structure-exploiting
//! interior point, exact block-coordinate descent, and the decomposed
//! parallel consensus ADMM.
//!
//! This is the evidence behind choosing projected gradient as the default
//! `E^OPT` solver and behind trusting the NEC normalizations: all six
//! methods must agree to well below the margins the figures report, with
//! certified duality gaps.

use crate::report::write_artifact;
use esched_obs::chrome::{convergence_trace, ConvergencePoint};
use esched_obs::{RunReport, TrialRecord, Value};
use esched_opt::{kkt_report, EnergyProgram, SolveOptions, SolverKind, SolverTelemetry};
use esched_subinterval::Timeline;
use esched_types::PolynomialPower;
use esched_workload::{GeneratorConfig, WorkloadGenerator};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// One solver's run record.
#[derive(Debug, Clone)]
pub struct SolverRun {
    /// Solver name.
    pub name: &'static str,
    /// Instance size (tasks).
    pub tasks: usize,
    /// Final objective.
    pub objective: f64,
    /// Certified duality gap.
    pub gap: f64,
    /// Iterations used.
    pub iters: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Projected-gradient KKT residual (solver-independent certificate).
    pub kkt_residual: f64,
    /// The solver's own telemetry (stalls, gap evaluations, backtracks).
    pub telemetry: SolverTelemetry,
}

/// Run all six solvers on instances of each size.
pub fn run(sizes: &[usize], seed: u64) -> Vec<SolverRun> {
    let mut out = Vec::new();
    for &n in sizes {
        let tasks =
            WorkloadGenerator::new(GeneratorConfig::paper_default().with_tasks(n), seed).generate();
        let tl = Timeline::build(&tasks);
        let ep = EnergyProgram::new(&tasks, &tl, 4, PolynomialPower::paper(3.0, 0.1));
        let opts = SolveOptions::default();
        for kind in SolverKind::ALL {
            let t0 = Instant::now();
            let r = kind.solve(&ep, &opts);
            let seconds = t0.elapsed().as_secs_f64();
            let kkt = kkt_report(&ep, &r.x);
            out.push(SolverRun {
                name: kind.name(),
                tasks: n,
                objective: r.objective,
                gap: r.gap,
                iters: r.iters,
                seconds,
                kkt_residual: kkt.projected_gradient_residual,
                telemetry: r.telemetry,
            });
        }
    }
    out
}

/// Render and persist the study.
pub fn run_and_report(seed: u64, outdir: &Path) -> String {
    let runs = run(&[10, 20, 40], seed);
    let mut out = String::from("Solver study (m=4, alpha=3, p0=0.1; default tolerances)\n");
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>14} {:>11} {:>8} {:>9} {:>11}",
        "tasks", "solver", "objective", "gap", "iters", "seconds", "kkt_resid"
    );
    let mut csv = String::from("tasks,solver,objective,gap,iters,seconds,kkt_residual\n");
    for r in &runs {
        let _ = writeln!(
            out,
            "{:>6} {:>12} {:>14.6} {:>11.2e} {:>8} {:>9.4} {:>11.2e}",
            r.tasks, r.name, r.objective, r.gap, r.iters, r.seconds, r.kkt_residual
        );
        let _ = writeln!(
            csv,
            "{},{},{:.9},{:.3e},{},{:.5},{:.3e}",
            r.tasks, r.name, r.objective, r.gap, r.iters, r.seconds, r.kkt_residual
        );
    }
    // Agreement check line.
    for &n in &[10usize, 20, 40] {
        let objs: Vec<f64> = runs
            .iter()
            .filter(|r| r.tasks == n)
            .map(|r| r.objective)
            .collect();
        let lo = objs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = objs.iter().cloned().fold(0.0_f64, f64::max);
        let _ = writeln!(
            out,
            "n = {n}: solver agreement spread = {:.2e} (relative)",
            (hi - lo) / lo
        );
    }
    let _ = write_artifact(outdir, "solvers.csv", &csv);
    // Structured artifact: one trial record per (size, solver) run.
    let mut report = RunReport::new("solvers").with_meta("seed", Value::Num(seed as f64));
    for (k, r) in runs.iter().enumerate() {
        let t = &r.telemetry;
        let mut rec = TrialRecord::new(k as u64, seed);
        rec.solver_iters = t.iters as u64;
        rec.gap_evals = t.gap_evals as u64;
        rec.converged = t.converged;
        rec.final_gap = t.final_gap;
        rec.solve_wall_s = t.wall_s;
        rec.extra
            .push(("solver".to_string(), Value::Str(r.name.to_string())));
        rec.extra
            .push(("tasks".to_string(), Value::Num(r.tasks as f64)));
        rec.extra
            .push(("objective".to_string(), Value::Num(r.objective)));
        rec.extra
            .push(("kkt_residual".to_string(), Value::Num(r.kkt_residual)));
        rec.extra
            .push(("backtracks".to_string(), Value::Num(t.backtracks as f64)));
        rec.extra
            .push(("stalls".to_string(), Value::Num(t.stalls as f64)));
        report.push(rec);
    }
    let _ = report.write_to_dir(outdir);

    // Convergence traces: re-run every solver on the n=20 instance with
    // per-iteration tracing on and render each run as Chrome counter
    // tracks (objective / gap / step over iterations), loadable in
    // Perfetto alongside a span capture.
    let tasks =
        WorkloadGenerator::new(GeneratorConfig::paper_default().with_tasks(20), seed).generate();
    let tl = Timeline::build(&tasks);
    let ep = EnergyProgram::new(&tasks, &tl, 4, PolynomialPower::paper(3.0, 0.1));
    let opts = SolveOptions::default().with_trace_iters(true);
    for kind in SolverKind::ALL {
        let r = kind.solve(&ep, &opts);
        let points: Vec<ConvergencePoint> = r
            .iter_trace
            .unwrap_or_default()
            .iter()
            .map(|s| ConvergencePoint {
                iter: s.iter,
                objective: s.objective,
                gap: s.gap,
                step: s.step,
            })
            .collect();
        let doc = convergence_trace(kind.name(), &points);
        let file = format!("convergence_{}.trace.json", kind.name());
        let _ = write_artifact(outdir, &file, &doc.to_string_pretty());
        let _ = writeln!(out, "convergence trace: {file} ({} samples)", points.len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_solvers_agree_within_tolerance() {
        let runs = run(&[10], 77);
        assert_eq!(runs.len(), SolverKind::ALL.len());
        assert_eq!(runs.len(), 6);
        let lo = runs
            .iter()
            .map(|r| r.objective)
            .fold(f64::INFINITY, f64::min);
        let hi = runs.iter().map(|r| r.objective).fold(0.0_f64, f64::max);
        assert!(
            (hi - lo) / lo < 2e-3,
            "solver spread too large: {lo} vs {hi}"
        );
        for r in &runs {
            assert!(r.gap >= -1e-9, "{}: negative gap {}", r.name, r.gap);
            assert!(r.seconds >= 0.0);
        }
    }

    #[test]
    fn every_solver_yields_an_iteration_trace_when_asked() {
        let tasks =
            WorkloadGenerator::new(GeneratorConfig::paper_default().with_tasks(10), 7).generate();
        let tl = Timeline::build(&tasks);
        let ep = EnergyProgram::new(&tasks, &tl, 4, PolynomialPower::paper(3.0, 0.1));
        let opts = SolveOptions::fast().with_trace_iters(true);
        for kind in SolverKind::ALL {
            let r = kind.solve(&ep, &opts);
            let trace = r.iter_trace.unwrap_or_default();
            assert!(!trace.is_empty(), "{}: empty iteration trace", kind.name());
            // Iteration numbers are positive and non-decreasing.
            let mut prev = 0usize;
            for s in &trace {
                assert!(s.iter >= prev.max(1), "{}: iter order", kind.name());
                assert!(s.objective.is_finite());
                prev = s.iter;
            }
            let doc = convergence_trace(
                kind.name(),
                &trace
                    .iter()
                    .map(|s| ConvergencePoint {
                        iter: s.iter,
                        objective: s.objective,
                        gap: s.gap,
                        step: s.step,
                    })
                    .collect::<Vec<_>>(),
            );
            assert!(!doc
                .get("traceEvents")
                .and_then(Value::as_array)
                .unwrap()
                .is_empty());
        }
    }
}
