//! Monte-Carlo driver shared by every experiment.
//!
//! Each figure point is the mean of `trials` independent task sets
//! (the paper uses 100). Trials are embarrassingly parallel and run on the
//! rayon pool; the per-trial seed is `base_seed + trial_index`, so results
//! are bit-identical regardless of thread interleaving.

use esched_core::{evaluate_nec, mean_nec, NecPoint};
use esched_opt::SolveOptions;
use esched_types::PolynomialPower;
use esched_workload::{GeneratorConfig, WorkloadGenerator};
use rayon::prelude::*;

/// One experiment setting: a platform plus a workload distribution.
#[derive(Debug, Clone, Copy)]
pub struct TrialSpec {
    /// Number of cores.
    pub cores: usize,
    /// Platform power model.
    pub power: PolynomialPower,
    /// Workload distribution.
    pub config: GeneratorConfig,
    /// Monte-Carlo repetitions.
    pub trials: usize,
    /// Base RNG seed; trial `k` uses `base_seed + k`.
    pub base_seed: u64,
}

/// Mean NEC over the spec's trials (parallel).
pub fn mean_nec_for(spec: &TrialSpec) -> NecPoint {
    nec_stats_for(spec).0
}

/// `(mean, sample std)` of the NEC over the spec's trials (parallel).
pub fn nec_stats_for(spec: &TrialSpec) -> (NecPoint, NecPoint) {
    let opts = SolveOptions::fast();
    let points: Vec<NecPoint> = (0..spec.trials)
        .into_par_iter()
        .map(|k| {
            let mut gen = WorkloadGenerator::new(spec.config, spec.base_seed + k as u64);
            let tasks = gen.generate();
            evaluate_nec(&tasks, spec.cores, &spec.power, &opts)
        })
        .collect();
    (mean_nec(&points), esched_core::std_nec(&points))
}

/// Run a closure once per trial in parallel and collect the results —
/// for experiments that measure more than NEC (e.g. deadline misses).
pub fn per_trial<T: Send>(
    config: GeneratorConfig,
    trials: usize,
    base_seed: u64,
    f: impl Fn(u64, esched_types::TaskSet) -> T + Sync,
) -> Vec<T> {
    (0..trials)
        .into_par_iter()
        .map(|k| {
            let seed = base_seed + k as u64;
            let mut gen = WorkloadGenerator::new(config, seed);
            let tasks = gen.generate();
            f(seed, tasks)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_nec_is_deterministic_and_sane() {
        let spec = TrialSpec {
            cores: 4,
            power: PolynomialPower::paper(3.0, 0.1),
            config: GeneratorConfig::paper_default().with_tasks(8),
            trials: 4,
            base_seed: 99,
        };
        let a = mean_nec_for(&spec);
        let b = mean_nec_for(&spec);
        assert_eq!(a, b);
        // NECs of heuristics ≥ ~1.
        assert!(a.f2 >= 0.999, "f2 = {}", a.f2);
        assert!(a.f1 >= 0.999, "f1 = {}", a.f1);
        assert!(a.i1 >= a.f1 - 1e-9);
        assert!(a.i2 >= a.f2 - 1e-9);
    }

    #[test]
    fn per_trial_passes_distinct_seeds() {
        let seeds = per_trial(
            GeneratorConfig::paper_default().with_tasks(3),
            5,
            1000,
            |seed, _tasks| seed,
        );
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1000, 1001, 1002, 1003, 1004]);
    }
}
