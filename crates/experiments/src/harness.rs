//! Monte-Carlo driver shared by every experiment.
//!
//! Each figure point is the mean of `trials` independent task sets
//! (the paper uses 100). Trials are embarrassingly parallel and run on a
//! scoped thread pool; the per-trial seed is `base_seed + trial_index`,
//! so results are bit-identical regardless of thread count or
//! interleaving.

use esched_core::{evaluate_nec, evaluate_nec_full, mean_nec, NecPoint};
use esched_obs::{RunReport, TrialRecord, Value};
use esched_opt::SolveOptions;
use esched_types::PolynomialPower;
use esched_workload::{GeneratorConfig, WorkloadGenerator};

/// Order-preserving parallel map over `0..n` on scoped threads. Static
/// chunking is fine here: trials within an experiment have near-uniform
/// cost.
pub fn parallel_map<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let mut results: Vec<Option<T>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let chunk = n.div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        for (c, slots) in results.chunks_mut(chunk).enumerate() {
            s.spawn(move || {
                for (j, out) in slots.iter_mut().enumerate() {
                    *out = Some(f(c * chunk + j));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// One experiment setting: a platform plus a workload distribution.
#[derive(Debug, Clone, Copy)]
pub struct TrialSpec {
    /// Number of cores.
    pub cores: usize,
    /// Platform power model.
    pub power: PolynomialPower,
    /// Workload distribution.
    pub config: GeneratorConfig,
    /// Monte-Carlo repetitions.
    pub trials: usize,
    /// Base RNG seed; trial `k` uses `base_seed + k`.
    pub base_seed: u64,
}

/// Mean NEC over the spec's trials (parallel).
pub fn mean_nec_for(spec: &TrialSpec) -> NecPoint {
    nec_stats_for(spec).0
}

/// `(mean, sample std)` of the NEC over the spec's trials (parallel).
pub fn nec_stats_for(spec: &TrialSpec) -> (NecPoint, NecPoint) {
    let opts = SolveOptions::fast();
    let points: Vec<NecPoint> = parallel_map(spec.trials, |k| {
        let mut gen = WorkloadGenerator::new(spec.config, spec.base_seed + k as u64);
        let tasks = gen.generate();
        evaluate_nec(&tasks, spec.cores, &spec.power, &opts)
    });
    (mean_nec(&points), esched_core::std_nec(&points))
}

/// [`nec_stats_for`] that also appends one [`TrialRecord`] per trial to
/// `report`: convex-solver telemetry (iterations, gap evaluations, wall
/// time, certified gap), a clean-sim verdict from simulating the `S^F2`
/// schedule, and the trial's F2 NEC. `point` labels which sweep setting
/// the trials belong to (e.g. `"p0=0.10"`).
pub fn nec_stats_reported(
    spec: &TrialSpec,
    point: &str,
    report: &mut RunReport,
) -> (NecPoint, NecPoint) {
    let opts = SolveOptions::fast();
    let results: Vec<(NecPoint, TrialRecord)> = parallel_map(spec.trials, |k| {
        let seed = spec.base_seed + k as u64;
        let mut gen = WorkloadGenerator::new(spec.config, seed);
        let tasks = gen.generate();
        let eval = evaluate_nec_full(&tasks, spec.cores, &spec.power, &opts);
        let sim = esched_sim::simulate(&eval.f2_schedule, &tasks, &spec.power);
        let t = &eval.opt_telemetry;
        let mut rec = TrialRecord::new(k as u64, seed);
        rec.solver_iters = t.iters as u64;
        rec.gap_evals = t.gap_evals as u64;
        rec.converged = t.converged;
        rec.final_gap = t.final_gap;
        rec.solve_wall_s = t.wall_s;
        rec.sim_clean = Some(sim.is_clean());
        rec.extra
            .push(("point".to_string(), Value::Str(point.to_string())));
        rec.extra
            .push(("nec_f2".to_string(), Value::Num(eval.nec.f2)));
        (eval.nec, rec)
    });
    let points: Vec<NecPoint> = results.iter().map(|(p, _)| *p).collect();
    let base = report.trials.len() as u64;
    for (_, mut rec) in results {
        rec.trial += base;
        report.push(rec);
    }
    (mean_nec(&points), esched_core::std_nec(&points))
}

/// Run a closure once per trial in parallel and collect the results —
/// for experiments that measure more than NEC (e.g. deadline misses).
pub fn per_trial<T: Send>(
    config: GeneratorConfig,
    trials: usize,
    base_seed: u64,
    f: impl Fn(u64, esched_types::TaskSet) -> T + Sync,
) -> Vec<T> {
    parallel_map(trials, |k| {
        let seed = base_seed + k as u64;
        let mut gen = WorkloadGenerator::new(config, seed);
        let tasks = gen.generate();
        f(seed, tasks)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_nec_is_deterministic_and_sane() {
        let spec = TrialSpec {
            cores: 4,
            power: PolynomialPower::paper(3.0, 0.1),
            config: GeneratorConfig::paper_default().with_tasks(8),
            trials: 4,
            base_seed: 99,
        };
        let a = mean_nec_for(&spec);
        let b = mean_nec_for(&spec);
        assert_eq!(a, b);
        // NECs of heuristics ≥ ~1.
        assert!(a.f2 >= 0.999, "f2 = {}", a.f2);
        assert!(a.f1 >= 0.999, "f1 = {}", a.f1);
        assert!(a.i1 >= a.f1 - 1e-9);
        assert!(a.i2 >= a.f2 - 1e-9);
    }

    #[test]
    fn per_trial_passes_distinct_seeds() {
        let seeds = per_trial(
            GeneratorConfig::paper_default().with_tasks(3),
            5,
            1000,
            |seed, _tasks| seed,
        );
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1000, 1001, 1002, 1003, 1004]);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(37, |i| i * 2);
        assert_eq!(out, (0..37).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, |i| i + 5), vec![5]);
    }
}
