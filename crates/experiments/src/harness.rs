//! Monte-Carlo driver shared by every experiment.
//!
//! Each figure point is the mean of `trials` independent task sets
//! (the paper uses 100). Trials are submitted as one batch to the
//! `esched-engine` work-stealing pool; the per-trial seed is
//! `base_seed + trial_index` and the engine indexes results by
//! submission order, so results are bit-identical regardless of worker
//! count or interleaving.
//!
//! The NEC sweep experiments (fig6–fig10) are all instances of one
//! generic [`ExperimentSpec`]: a list of [`SweepPoint`]s (platform +
//! workload distribution per x value) plus presentation labels. Each fig
//! module now only declares its spec; the run/report plumbing lives here
//! once.

use crate::report::{nec_csv_with_std, nec_table, write_artifact};
use esched_core::{mean_nec, NecPoint};
use esched_engine::{Engine, EngineConfig, ScheduleRequest};
use esched_obs::{RunReport, TrialRecord, Value};
use esched_opt::{SolveOptions, SolverKind};
use esched_types::PolynomialPower;
use esched_workload::{GeneratorConfig, WorkloadGenerator};
use std::path::Path;

/// Order-preserving parallel map over `0..n` on scoped threads. Static
/// chunking is fine here: trials within an experiment have near-uniform
/// cost.
pub fn parallel_map<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let mut results: Vec<Option<T>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let chunk = n.div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        for (c, slots) in results.chunks_mut(chunk).enumerate() {
            s.spawn(move || {
                for (j, out) in slots.iter_mut().enumerate() {
                    *out = Some(f(c * chunk + j));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// One experiment setting: a platform plus a workload distribution.
#[derive(Debug, Clone, Copy)]
pub struct TrialSpec {
    /// Number of cores.
    pub cores: usize,
    /// Platform power model.
    pub power: PolynomialPower,
    /// Workload distribution.
    pub config: GeneratorConfig,
    /// Monte-Carlo repetitions.
    pub trials: usize,
    /// Base RNG seed; trial `k` uses `base_seed + k`.
    pub base_seed: u64,
}

/// Per-trial warm-start seeds harvested from the previous sweep point,
/// keyed by the `(n, m)` shape they were solved under. Sweep experiments
/// vary a platform parameter while reusing the same `base_seed`, so trial
/// `k` at point `p+1` is the *same task set* as trial `k` at point `p`
/// under slightly different power — the previous optimum is one projection
/// away from the new one. A key or dimension mismatch (e.g. fig10's task
/// count sweep) simply falls back to the cold start inside the solver.
#[derive(Debug, Clone, Default)]
pub struct WarmSeeds {
    /// `(n_tasks, cores)` the seeds were solved under.
    key: (usize, usize),
    /// Trial-indexed final iterates of the previous point's solves.
    by_trial: Vec<Option<Vec<f64>>>,
}

impl WarmSeeds {
    fn seed_for(&self, spec: &TrialSpec, trial: usize) -> Option<Vec<f64>> {
        if self.key != (spec.config.tasks, spec.cores) {
            return None;
        }
        self.by_trial.get(trial)?.clone()
    }
}

/// Build the engine requests for a spec's trials: trial `k` gets the task
/// set generated from `base_seed + k` and a full-battery pipeline (DER
/// schedule, fast `E^OPT` solve for NEC, optional sim cross-check).
/// `warm` carries the previous sweep point's solutions; seeding happens
/// here, at submission time, so results stay bit-identical regardless of
/// worker count.
fn trial_requests(spec: &TrialSpec, sim_verify: bool, warm: &WarmSeeds) -> Vec<ScheduleRequest> {
    let config = EngineConfig::new()
        .with_solver(SolverKind::ProjectedGradient)
        .with_solve_options(SolveOptions::fast())
        .with_sim_verify(sim_verify);
    (0..spec.trials)
        .map(|k| {
            let mut gen = WorkloadGenerator::new(spec.config, spec.base_seed + k as u64);
            let mut config = config.clone();
            config.solve_options.warm_start = warm.seed_for(spec, k);
            ScheduleRequest {
                tasks: gen.generate(),
                cores: spec.cores,
                power: spec.power,
                config,
            }
        })
        .collect()
}

/// Mean NEC over the spec's trials (engine batch).
pub fn mean_nec_for(spec: &TrialSpec) -> NecPoint {
    nec_stats_for(spec).0
}

/// `(mean, sample std)` of the NEC over the spec's trials (engine batch).
pub fn nec_stats_for(spec: &TrialSpec) -> (NecPoint, NecPoint) {
    let outcomes = Engine::new().run_batch(&trial_requests(spec, false, &WarmSeeds::default()));
    let points: Vec<NecPoint> = outcomes
        .into_iter()
        .map(|r| {
            r.expect("trial pipeline panicked")
                .nec
                .expect("solver configured")
        })
        .collect();
    (mean_nec(&points), esched_core::std_nec(&points))
}

/// [`nec_stats_for`] that also appends one [`TrialRecord`] per trial to
/// `report`: convex-solver telemetry (iterations, gap evaluations, wall
/// time, certified gap), a clean-sim verdict from simulating the `S^F2`
/// schedule, and the trial's F2 NEC. `point` labels which sweep setting
/// the trials belong to (e.g. `"p0=0.10"`).
pub fn nec_stats_reported(
    spec: &TrialSpec,
    point: &str,
    report: &mut RunReport,
) -> (NecPoint, NecPoint) {
    let mut warm = WarmSeeds::default();
    nec_stats_warmed(spec, point, report, &mut warm)
}

/// [`nec_stats_reported`] that additionally reads warm-start seeds from
/// `warm` (the previous sweep point's solutions) and replaces them with
/// this point's solutions on return — the chaining primitive behind
/// [`ExperimentSpec::run_stats_reported`].
pub fn nec_stats_warmed(
    spec: &TrialSpec,
    point: &str,
    report: &mut RunReport,
    warm: &mut WarmSeeds,
) -> (NecPoint, NecPoint) {
    let outcomes = Engine::new().run_batch(&trial_requests(spec, true, warm));
    warm.key = (spec.config.tasks, spec.cores);
    warm.by_trial.clear();
    warm.by_trial.resize(outcomes.len(), None);
    let mut points: Vec<NecPoint> = Vec::with_capacity(outcomes.len());
    let base = report.trials.len() as u64;
    for (k, result) in outcomes.into_iter().enumerate() {
        let mut outcome = result.expect("trial pipeline panicked");
        warm.by_trial[k] = outcome.opt_x.take();
        let nec = outcome.nec.expect("solver configured");
        let opt = outcome.opt.as_ref().expect("solver configured");
        let t = opt.telemetry.expect("telemetry enabled by default");
        let seed = spec.base_seed + k as u64;
        let mut rec = TrialRecord::new(base + k as u64, seed);
        rec.solver_iters = t.iters as u64;
        rec.gap_evals = t.gap_evals as u64;
        rec.converged = t.converged;
        rec.final_gap = t.final_gap;
        rec.solve_wall_s = t.wall_s;
        rec.sim_clean = outcome.sim.map(|s| s.clean);
        rec.extra
            .push(("point".to_string(), Value::Str(point.to_string())));
        rec.extra.push(("nec_f2".to_string(), Value::Num(nec.f2)));
        report.push(rec);
        points.push(nec);
    }
    (mean_nec(&points), esched_core::std_nec(&points))
}

/// One x value of a sweep experiment: its labels plus the platform and
/// workload distribution to draw trials from.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// x-axis label in tables and CSVs (e.g. `"0.10"`, `"[0.3,1]"`).
    pub x: String,
    /// The `point` tag written into each trial record (e.g. `"p0=0.10"`).
    pub tag: String,
    /// Number of cores.
    pub cores: usize,
    /// Platform power model.
    pub power: PolynomialPower,
    /// Workload distribution.
    pub config: GeneratorConfig,
}

/// A whole NEC sweep experiment (one figure): presentation labels plus
/// the sweep points. The run/report driver shared by fig6–fig10.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Short name: the [`RunReport`] name and the CSV file stem
    /// (e.g. `"fig6"`).
    pub name: &'static str,
    /// x column label in the printed table.
    pub table_x: &'static str,
    /// x column label in the CSV (usually equals `table_x`).
    pub csv_x: &'static str,
    /// Title up to (but excluding) the trailing `", {trials} trials)"`.
    pub title: &'static str,
    /// The swept settings, in x order.
    pub points: Vec<SweepPoint>,
}

impl ExperimentSpec {
    /// Run every point's trials through the engine; returns
    /// `(x labels, mean rows, std rows, per-trial report)`.
    pub fn run_stats_reported(
        &self,
        trials: usize,
        base_seed: u64,
    ) -> (Vec<String>, Vec<NecPoint>, Vec<NecPoint>, RunReport) {
        let mut report = RunReport::new(self.name)
            .with_meta("trials_per_point", Value::Num(trials as f64))
            .with_meta("base_seed", Value::Num(base_seed as f64));
        let mut xs = Vec::new();
        let mut rows = Vec::new();
        let mut stds = Vec::new();
        // Seed every point's solves from the previous point's solutions:
        // sweep neighbors share task sets (same base_seed), so the
        // previous optimum is a near-feasible guess for the next solve.
        let mut warm = WarmSeeds::default();
        for point in &self.points {
            let spec = TrialSpec {
                cores: point.cores,
                power: point.power,
                config: point.config,
                trials,
                base_seed,
            };
            xs.push(point.x.clone());
            let (mean, std) = nec_stats_warmed(&spec, &point.tag, &mut report, &mut warm);
            rows.push(mean);
            stds.push(std);
        }
        (xs, rows, stds, report)
    }

    /// Run the sweep; returns `(x labels, mean rows, std rows)`.
    pub fn run_stats(
        &self,
        trials: usize,
        base_seed: u64,
    ) -> (Vec<String>, Vec<NecPoint>, Vec<NecPoint>) {
        let (xs, rows, stds, _) = self.run_stats_reported(trials, base_seed);
        (xs, rows, stds)
    }

    /// Run the sweep; returns `(x labels, mean rows)`.
    pub fn run(&self, trials: usize, base_seed: u64) -> (Vec<String>, Vec<NecPoint>) {
        let (xs, rows, _) = self.run_stats(trials, base_seed);
        (xs, rows)
    }

    /// Run, render the table, and write `<name>.csv` plus the run report
    /// to `outdir`.
    pub fn run_and_report(&self, trials: usize, base_seed: u64, outdir: &Path) -> String {
        let (xs, rows, stds, report) = self.run_stats_reported(trials, base_seed);
        let table = nec_table(self.table_x, &xs, &rows);
        let _ = write_artifact(
            outdir,
            &format!("{}.csv", self.name),
            &nec_csv_with_std(self.csv_x, &xs, &rows, &stds),
        );
        let _ = report.write_to_dir(outdir);
        format!("{}, {trials} trials)\n{table}", self.title)
    }
}

/// Run a closure once per trial in parallel and collect the results —
/// for experiments that measure more than NEC (e.g. deadline misses).
pub fn per_trial<T: Send>(
    config: GeneratorConfig,
    trials: usize,
    base_seed: u64,
    f: impl Fn(u64, esched_types::TaskSet) -> T + Sync,
) -> Vec<T> {
    parallel_map(trials, |k| {
        let seed = base_seed + k as u64;
        let mut gen = WorkloadGenerator::new(config, seed);
        let tasks = gen.generate();
        f(seed, tasks)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_nec_is_deterministic_and_sane() {
        let spec = TrialSpec {
            cores: 4,
            power: PolynomialPower::paper(3.0, 0.1),
            config: GeneratorConfig::paper_default().with_tasks(8),
            trials: 4,
            base_seed: 99,
        };
        let a = mean_nec_for(&spec);
        let b = mean_nec_for(&spec);
        assert_eq!(a, b);
        // NECs of heuristics ≥ ~1.
        assert!(a.f2 >= 0.999, "f2 = {}", a.f2);
        assert!(a.f1 >= 0.999, "f1 = {}", a.f1);
        assert!(a.i1 >= a.f1 - 1e-9);
        assert!(a.i2 >= a.f2 - 1e-9);
    }

    #[test]
    fn per_trial_passes_distinct_seeds() {
        let seeds = per_trial(
            GeneratorConfig::paper_default().with_tasks(3),
            5,
            1000,
            |seed, _tasks| seed,
        );
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1000, 1001, 1002, 1003, 1004]);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(37, |i| i * 2);
        assert_eq!(out, (0..37).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, |i| i + 5), vec![5]);
    }
}
