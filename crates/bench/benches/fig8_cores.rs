//! Fig. 8 bench: NEC-evaluation point per core count
//! (`α = 3`, `p₀ = 0.2`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esched_bench::paper_tasks;
use esched_core::{der_schedule, optimal_energy};
use esched_opt::SolveOptions;
use esched_types::PolynomialPower;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let tasks = paper_tasks(20, 2014);
    let power = PolynomialPower::paper(3.0, 0.2);
    let mut g = c.benchmark_group("fig8_cores");
    for m in [2usize, 4, 8, 12] {
        g.bench_with_input(BenchmarkId::new("der_f2", m), &m, |b, &m| {
            b.iter(|| black_box(der_schedule(&tasks, m, &power).final_energy))
        });
        g.bench_with_input(BenchmarkId::new("optimal", m), &m, |b, &m| {
            b.iter(|| black_box(optimal_energy(&tasks, m, &power, &SolveOptions::fast()).energy))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
