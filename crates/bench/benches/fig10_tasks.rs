//! Fig. 10 bench: how the schedulers scale with the number of tasks —
//! the axis where "lightweight" matters most.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esched_bench::paper_tasks;
use esched_core::{der_schedule, optimal_energy};
use esched_opt::SolveOptions;
use esched_types::PolynomialPower;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let power = PolynomialPower::paper(3.0, 0.2);
    let mut g = c.benchmark_group("fig10_tasks");
    for n in [5usize, 10, 20, 40] {
        let tasks = paper_tasks(n, 2014);
        g.bench_with_input(BenchmarkId::new("der_f2", n), &n, |b, _| {
            b.iter(|| black_box(der_schedule(&tasks, 4, &power).final_energy))
        });
        g.bench_with_input(BenchmarkId::new("optimal", n), &n, |b, _| {
            b.iter(|| black_box(optimal_energy(&tasks, 4, &power, &SolveOptions::fast()).energy))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
