//! Fig. 9 bench: NEC-evaluation point per intensity generation range
//! (`α = 3`, `p₀ = 0.2`, `m = 4`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esched_bench::intensity_tasks;
use esched_core::{der_schedule, even_schedule};
use esched_types::PolynomialPower;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let power = PolynomialPower::paper(3.0, 0.2);
    let mut g = c.benchmark_group("fig9_intensity");
    for lo in [0.1, 0.5, 1.0] {
        let tasks = intensity_tasks(20, lo, 2014);
        g.bench_with_input(BenchmarkId::new("der_f2", lo), &lo, |b, _| {
            b.iter(|| black_box(der_schedule(&tasks, 4, &power).final_energy))
        });
        g.bench_with_input(BenchmarkId::new("even_f1", lo), &lo, |b, _| {
            b.iter(|| black_box(even_schedule(&tasks, 4, &power).final_energy))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
