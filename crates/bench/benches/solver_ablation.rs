//! Solver ablation: the three first-order methods on the same energy
//! program. DESIGN.md calls out the solver choice as a design decision —
//! this bench is the evidence (PGD is the default because it wins or ties
//! on these instance sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esched_bench::paper_tasks;
use esched_opt::{
    solve_barrier, solve_fista, solve_frank_wolfe, solve_pgd, EnergyProgram, SolveOptions,
};
use esched_subinterval::Timeline;
use esched_types::PolynomialPower;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver_ablation");
    g.sample_size(20);
    for n in [10usize, 20, 40] {
        let tasks = paper_tasks(n, 7);
        let tl = Timeline::build(&tasks);
        let ep = EnergyProgram::new(&tasks, &tl, 4, PolynomialPower::paper(3.0, 0.1));
        let opts = SolveOptions::fast();
        g.bench_with_input(BenchmarkId::new("pgd", n), &n, |b, _| {
            b.iter(|| black_box(solve_pgd(&ep, ep.initial_point(), &opts).objective))
        });
        g.bench_with_input(BenchmarkId::new("fista", n), &n, |b, _| {
            b.iter(|| black_box(solve_fista(&ep, ep.initial_point(), &opts).objective))
        });
        g.bench_with_input(BenchmarkId::new("frank_wolfe", n), &n, |b, _| {
            b.iter(|| black_box(solve_frank_wolfe(&ep, ep.initial_point(), &opts).objective))
        });
        g.bench_with_input(BenchmarkId::new("interior_point", n), &n, |b, _| {
            b.iter(|| black_box(solve_barrier(&ep, &opts).objective))
        });
        g.bench_with_input(BenchmarkId::new("block_descent", n), &n, |b, _| {
            b.iter(|| black_box(esched_opt::solve_block_descent(&ep, &opts).objective))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
