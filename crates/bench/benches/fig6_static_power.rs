//! Fig. 6 bench: one NEC-evaluation point (all five schedules + optimum)
//! per static-power setting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esched_bench::paper_tasks;
use esched_core::{der_schedule, even_schedule, optimal_energy};
use esched_opt::SolveOptions;
use esched_types::PolynomialPower;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let tasks = paper_tasks(20, 2014);
    let mut g = c.benchmark_group("fig6_static_power");
    for p0 in [0.0, 0.1, 0.2] {
        let power = PolynomialPower::paper(3.0, p0);
        g.bench_with_input(BenchmarkId::new("der_f2", p0), &p0, |b, _| {
            b.iter(|| black_box(der_schedule(&tasks, 4, &power).final_energy))
        });
        g.bench_with_input(BenchmarkId::new("even_f1", p0), &p0, |b, _| {
            b.iter(|| black_box(even_schedule(&tasks, 4, &power).final_energy))
        });
        g.bench_with_input(BenchmarkId::new("optimal", p0), &p0, |b, _| {
            b.iter(|| black_box(optimal_energy(&tasks, 4, &power, &SolveOptions::fast()).energy))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
