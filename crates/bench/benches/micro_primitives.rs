//! Microbenchmarks of the building blocks: timeline construction,
//! capped-simplex projection, the LMO, Algorithm 1 packing, Algorithm 2
//! allocation, schedule validation, and the tracing layer's
//! disabled-path overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esched_bench::paper_tasks;
use esched_core::{allocate, ideal_schedule, pack_subinterval, AllocRequest, PackItem};
use esched_opt::{lmo_capped_simplex, project_capped_simplex};
use esched_subinterval::Timeline;
use esched_types::{validate_schedule, PolynomialPower, Schedule};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_primitives");

    for n in [20usize, 80] {
        let tasks = paper_tasks(n, 3);
        g.bench_with_input(BenchmarkId::new("timeline_build", n), &n, |b, _| {
            b.iter(|| black_box(Timeline::build(&tasks)))
        });
        let tl = Timeline::build(&tasks);
        let ideal = ideal_schedule(&tasks, &PolynomialPower::paper(3.0, 0.1));
        g.bench_with_input(BenchmarkId::new("algorithm2_der_alloc", n), &n, |b, _| {
            b.iter(|| black_box(allocate(AllocRequest::new(&tasks, &tl, 4, &ideal))))
        });
    }

    // Projection / LMO on a representative block size.
    for dim in [16usize, 128] {
        let z: Vec<f64> = (0..dim).map(|k| (k as f64 * 0.37).sin() + 1.0).collect();
        let u = vec![1.0; dim];
        let cap = dim as f64 * 0.3;
        let mut out = vec![0.0; dim];
        g.bench_with_input(BenchmarkId::new("projection", dim), &dim, |b, _| {
            b.iter(|| {
                project_capped_simplex(black_box(&z), &u, cap, &mut out);
                black_box(&out);
            })
        });
        g.bench_with_input(BenchmarkId::new("lmo", dim), &dim, |b, _| {
            b.iter(|| {
                lmo_capped_simplex(black_box(&z), &u, cap, &mut out);
                black_box(&out);
            })
        });
    }

    // Algorithm 1 packing.
    let items: Vec<PackItem> = (0..24)
        .map(|i| PackItem {
            task: i,
            duration: 0.2 + 0.4 * (i as f64 * 0.23).fract(),
            freq: 1.0,
        })
        .collect();
    g.bench_function("algorithm1_pack_24", |b| {
        b.iter(|| {
            let mut s = Schedule::new(8);
            pack_subinterval(black_box(&items), 0.0, 2.0, 8, &mut s).unwrap();
            black_box(s)
        })
    });

    // Validation of a real schedule.
    let tasks = paper_tasks(40, 17);
    let out = esched_core::der_schedule(&tasks, 4, &PolynomialPower::paper(3.0, 0.1));
    g.bench_function("validate_schedule_40tasks", |b| {
        b.iter(|| black_box(validate_schedule(&out.schedule, &tasks)))
    });

    // Tracing overhead. The disabled fast path is one relaxed atomic load
    // per span!/event! call site and must stay in the low single-digit
    // nanoseconds — compare `span_callsite_disabled` against the pure
    // atomic load to see the macro adds nothing, and compare the two
    // `der_schedule_20tasks_*` runs to confirm the end-to-end pipeline
    // (several span/event sites per call) is within noise (<2%) of itself
    // with tracing off vs. actively collecting to a memory sink.
    esched_obs::trace::disable();
    g.bench_function("span_callsite_disabled", |b| {
        b.iter(|| {
            let _span = esched_obs::span!(
                esched_obs::Level::Debug,
                "bench_probe",
                n = black_box(42usize)
            );
        })
    });
    g.bench_function("der_schedule_20tasks_traced_off", |b| {
        let tasks = paper_tasks(20, 3);
        b.iter(|| {
            black_box(esched_core::der_schedule(
                &tasks,
                4,
                &PolynomialPower::paper(3.0, 0.1),
            ))
        })
    });
    {
        let sink = esched_obs::trace::MemorySink::new();
        esched_obs::trace::init_with(
            esched_obs::trace::Filter::parse("debug"),
            std::sync::Arc::new(sink.clone()),
        );
        g.bench_function("der_schedule_20tasks_traced_debug", |b| {
            let tasks = paper_tasks(20, 3);
            b.iter(|| {
                black_box(esched_core::der_schedule(
                    &tasks,
                    4,
                    &PolynomialPower::paper(3.0, 0.1),
                ));
                sink.drain();
            })
        });
        esched_obs::trace::disable();
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
