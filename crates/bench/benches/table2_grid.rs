//! Table II bench: one full five-schedule NEC evaluation (the unit of
//! work each of the paper's 121 grid cells repeats 100 times).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esched_bench::paper_tasks;
use esched_core::evaluate_nec;
use esched_opt::SolveOptions;
use esched_types::PolynomialPower;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let tasks = paper_tasks(20, 2014);
    let mut g = c.benchmark_group("table2_grid");
    g.sample_size(20);
    for (alpha, p0) in [(2.0, 0.0), (2.5, 0.1), (3.0, 0.2)] {
        let power = PolynomialPower::paper(alpha, p0);
        let id = format!("a{alpha}_p{p0}");
        g.bench_with_input(BenchmarkId::new("nec_cell", id), &power, |b, power| {
            b.iter(|| black_box(evaluate_nec(&tasks, 4, power, &SolveOptions::fast())))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
