//! The "lightweight" claim, measured: heuristic runtime vs. the convex
//! solver as the task count grows. The paper's argument for the
//! subinterval heuristics is exactly this gap — the optimum costs a large
//! iterative solve over `O(n²)` variables, while the heuristics are a few
//! passes over the timeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esched_bench::paper_tasks;
use esched_core::{der_schedule, even_schedule, optimal_energy, yds_schedule};
use esched_opt::SolveOptions;
use esched_types::PolynomialPower;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let power = PolynomialPower::paper(3.0, 0.1);
    let mut g = c.benchmark_group("runtime_scaling");
    g.sample_size(20);
    for n in [10usize, 20, 40, 80, 160] {
        let tasks = paper_tasks(n, 99);
        g.bench_with_input(BenchmarkId::new("heuristic_der", n), &n, |b, _| {
            b.iter(|| black_box(der_schedule(&tasks, 4, &power).final_energy))
        });
        g.bench_with_input(BenchmarkId::new("heuristic_even", n), &n, |b, _| {
            b.iter(|| black_box(even_schedule(&tasks, 4, &power).final_energy))
        });
        // The solver gets expensive fast; cap it to the sizes the paper
        // actually simulates.
        if n <= 40 {
            g.bench_with_input(BenchmarkId::new("convex_optimum", n), &n, |b, _| {
                b.iter(|| {
                    black_box(optimal_energy(&tasks, 4, &power, &SolveOptions::fast()).energy)
                })
            });
            g.bench_with_input(BenchmarkId::new("yds_uniprocessor", n), &n, |b, _| {
                b.iter(|| black_box(yds_schedule(&tasks, &PolynomialPower::cubic()).energy))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
