//! Fig. 11 bench: the practical-processor pipeline — continuous schedule
//! under the fitted XScale model plus quantization to the level table.

use criterion::{criterion_group, criterion_main, Criterion};
use esched_bench::xscale_tasks;
use esched_core::{der_schedule, even_schedule, quantize_schedule, QuantizePolicy};
use esched_workload::{xscale_discrete, xscale_paper_fit};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let tasks = xscale_tasks(20, 2014);
    let power = xscale_paper_fit();
    let table = xscale_discrete();
    let der = der_schedule(&tasks, 4, &power);

    let mut g = c.benchmark_group("fig11_xscale");
    g.bench_function("der_f2_continuous", |b| {
        b.iter(|| black_box(der_schedule(&tasks, 4, &power).final_energy))
    });
    g.bench_function("even_f1_continuous", |b| {
        b.iter(|| black_box(even_schedule(&tasks, 4, &power).final_energy))
    });
    g.bench_function("quantize_next_up", |b| {
        b.iter(|| {
            black_box(quantize_schedule(
                &der.schedule,
                &table,
                QuantizePolicy::NextUp,
            ))
        })
    });
    g.bench_function("quantize_best_efficiency", |b| {
        b.iter(|| {
            black_box(quantize_schedule(
                &der.schedule,
                &table,
                QuantizePolicy::BestEfficiency,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
