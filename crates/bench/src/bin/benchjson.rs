//! `benchjson` — run the curated benchmark suite and emit `BENCH_*.json`,
//! or compare two such files as a regression gate.
//!
//! ```text
//! benchjson [--out PATH]            run the suite; write BENCH_<sha>.json
//! benchjson --filter SUBSTR         run only entries whose name contains SUBSTR
//! benchjson --compare BASE CURRENT  exit 1 if CURRENT regressed >25% p50
//! benchjson --compare BASE CURRENT --threshold 0.5
//! ```
//!
//! `--filter` runs are for ad-hoc measurement (e.g. the CI scale-smoke
//! job timing only the large-n entries): the resulting document covers a
//! subset of the suite, so it cannot be used as a `--compare` baseline.
//!
//! Compare mode also exits nonzero (status 2) when the two documents
//! cover different entry sets — a new bench with no baseline entry, or a
//! baseline entry the current run no longer measures — so a stale
//! `BENCH_baseline.json` fails loudly instead of silently skipping the
//! gate.
//!
//! Run mode writes to `--out` if given, otherwise `BENCH_<git-short-sha>.json`
//! (`BENCH_nogit.json` outside a git checkout) in the current directory —
//! CI invokes it from the repo root. Designed for release builds:
//! `cargo run --release -p esched-bench --bin benchjson`.

use esched_bench::harness::{self, DEFAULT_THRESHOLD};
use esched_obs::{json, report};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: benchjson [--out PATH] [--filter SUBSTR]\n       benchjson --compare BASELINE CURRENT [--threshold FRACTION]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Result<json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: parse error: {e:?}"))
}

fn run_compare(baseline: &str, current: &str, threshold: f64) -> ExitCode {
    let (base, cur) = match (load(baseline), load(current)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("benchjson: {e}");
            return ExitCode::from(2);
        }
    };
    match harness::compare(&base, &cur, threshold) {
        Ok(regs) if regs.is_empty() => {
            println!(
                "benchjson: no p50 regression above {:.0}% ({} vs {})",
                threshold * 100.0,
                current,
                baseline
            );
            ExitCode::SUCCESS
        }
        Ok(regs) => {
            // Gating classes (micro/*) fail the run; the noisier classes
            // are reported but advisory.
            let (gating, advisory): (Vec<_>, Vec<_>) =
                regs.iter().partition(|r| harness::gating(&r.name));
            for r in &advisory {
                eprintln!(
                    "benchjson: advisory: {}: {:.0} ns -> {:.0} ns ({:.2}x)",
                    r.name, r.base_p50, r.cur_p50, r.ratio
                );
            }
            if gating.is_empty() {
                println!(
                    "benchjson: {} advisory regression(s), none gating ({} vs {})",
                    advisory.len(),
                    current,
                    baseline
                );
                return ExitCode::SUCCESS;
            }
            eprintln!(
                "benchjson: {} gating entr{} regressed more than {:.0}% in p50:",
                gating.len(),
                if gating.len() == 1 { "y" } else { "ies" },
                threshold * 100.0
            );
            for r in &gating {
                eprintln!(
                    "  {}: {:.0} ns -> {:.0} ns ({:.2}x)",
                    r.name, r.base_p50, r.cur_p50, r.ratio
                );
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("benchjson: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Compare mode.
    if let Some(pos) = args.iter().position(|a| a == "--compare") {
        let (Some(baseline), Some(current)) = (args.get(pos + 1), args.get(pos + 2)) else {
            usage();
        };
        let threshold = match args.iter().position(|a| a == "--threshold") {
            Some(tp) => match args.get(tp + 1).and_then(|s| s.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => t,
                _ => usage(),
            },
            None => DEFAULT_THRESHOLD,
        };
        return run_compare(baseline, current, threshold);
    }

    // Run mode.
    let mut out: Option<String> = None;
    let mut filter: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => usage(),
            },
            "--filter" => match it.next() {
                Some(f) => filter = Some(f.clone()),
                None => usage(),
            },
            _ => usage(),
        }
    }
    let out =
        out.unwrap_or_else(|| format!("BENCH_{}.json", report::git_short_sha().unwrap_or("nogit")));

    let mut suite = harness::curated_suite();
    if let Some(f) = &filter {
        suite.retain(|b| b.name.contains(f.as_str()));
        if suite.is_empty() {
            eprintln!("benchjson: --filter {f:?} matches no entries");
            return ExitCode::from(2);
        }
    }
    let results: Vec<harness::BenchResult> = suite
        .iter_mut()
        .map(|b| {
            eprintln!("benchjson: running {}", b.name);
            harness::run_entry(b)
        })
        .collect();
    let doc = harness::results_to_json(&results);
    if let Err(e) = std::fs::write(&out, doc.to_string_pretty()) {
        eprintln!("benchjson: write {out}: {e}");
        return ExitCode::from(2);
    }
    println!("benchjson: wrote {} ({} entries)", out, results.len());
    ExitCode::SUCCESS
}
