//! `health_smoke` — the CI gate for the online health & SLO subsystem.
//!
//! Four checks, all fatal on failure:
//!
//! 1. **Exact alarm discipline**: a 512-event online stream with the full
//!    health stack (windowed sketches, SLO evaluation, synchronous shadow
//!    audits) raises *zero* events on the clean prefix; an injected stall
//!    (6 virtual seconds of silence) and an injected quality regression
//!    (audited energy inflated 40%) then fire *exactly* one
//!    `heartbeat_stale` and one `energy_regret` event, in that order.
//! 2. **Byte-identity with health enabled**: after the full stream plus
//!    fault injection, the online outcome is still byte-identical to the
//!    offline pipeline at 1, 4, and 8 workers — recording and auditing
//!    never touch plan state.
//! 3. **Hot-path overhead**: the curated `online/health_overhead_on`
//!    entry's p50 is within [`MAX_OVERHEAD`] of `_off` (best of
//!    [`OVERHEAD_RETRIES`] timing runs, to shed CI noise).
//! 4. **Benchjson coverage**: both overhead entries land in the emitted
//!    document, so the perf gate tracks them.
//!
//! CI runs this with `ESCHED_ENGINE_THREADS=4`.

use esched_bench::harness;
use esched_bench::paper_tasks;
use esched_engine::{AuditConfig, Engine, OnlineEngine, OnlineEvent};
use esched_obs::health::{now_ns, HealthEventKind, HealthState, SloPolicy};
use esched_obs::json::Value;
use esched_types::{PolynomialPower, Task};
use std::time::Duration;

const EVENTS: usize = 512;
/// Healthy shadow audits sprinkled through the clean prefix.
const AUDIT_EVERY: usize = 128;
/// Acceptance bar: health-on p50 ≤ 2% over health-off.
const MAX_OVERHEAD: f64 = 1.02;
/// Timing runs to shed scheduler noise before failing the overhead bar.
const OVERHEAD_RETRIES: usize = 3;

/// Deterministic stream: arrivals (half off-grid), completions at 80%,
/// and ±0.3 window slides — the `online_smoke` mix.
fn event_for(i: usize, engine: &OnlineEngine) -> OnlineEvent {
    let n = engine.len();
    match i % 4 {
        0 | 3 => {
            let release = if i % 8 == 3 {
                engine.tasks().get((i * 13) % n).deadline
            } else {
                (i as f64 * 0.381) % 45.0
            };
            let window = 2.0 + ((i * 7) % 13) as f64 * 0.5;
            OnlineEvent::Arrive(Task::of(release, release + window, 0.3 + 0.4 * window))
        }
        1 => {
            let task = (i * 31) % n;
            OnlineEvent::Complete {
                task,
                actual_work: engine.tasks().get(task).wcec * 0.8,
            }
        }
        _ => {
            let task = (i * 17) % n;
            let t = *engine.tasks().get(task);
            let delta = if i % 8 < 4 { 0.3 } else { -0.3 };
            OnlineEvent::Shift {
                task,
                release: t.release + delta,
                deadline: t.deadline + delta,
            }
        }
    }
}

fn main() {
    let power = PolynomialPower::paper(3.0, 0.1);
    const S: u64 = 1_000_000_000;

    // --- 1. exact alarm discipline over a 512-event stream ---
    // Budgets generous enough that a loaded CI runner can't trip them by
    // being slow; the *injected* faults use the virtual clock, so they
    // fire regardless of real latency.
    let policy = SloPolicy::new(Duration::from_secs(30))
        .with_replan_p99(Duration::from_secs(5))
        // The DER heuristic's true regret sits near +0.21 on this stream;
        // the ceiling leaves headroom for solver noise while the injected
        // 40% inflation (regret 0.4 + 1.4·r) clears it by a wide margin.
        .with_regret_ceiling(0.30)
        .with_fallback_rate_ceiling(1.0)
        .with_heartbeat_timeout(Duration::from_secs(10));
    let mut engine = OnlineEngine::new(paper_tasks(64, 9), 8, power)
        .with_health(policy)
        .with_audit(AuditConfig::default().with_every(0).with_synchronous(true));
    for i in 0..EVENTS {
        let event = event_for(i, &engine);
        engine.apply(&event).expect("stream event rejected");
        if (i + 1) % AUDIT_EVERY == 0 {
            let regret = engine.force_audit().expect("audit configured");
            // The smoke runs audits synchronously for determinism, so the
            // E^OPT solve stalls the stream clock — something the async
            // production path never does. Re-stamp liveness so the stall
            // check measures the stream, not the inline solver.
            engine.health().expect("health enabled").heartbeat();
            println!(
                "health_smoke: {} events, audit regret {regret:+.4} (n={})",
                i + 1,
                engine.len()
            );
        }
    }
    let monitor = std::sync::Arc::clone(engine.health().expect("health enabled"));
    let fired = monitor.evaluate_at(now_ns());
    assert!(
        fired.is_empty() && monitor.state() == HealthState::Healthy,
        "false alarm on the clean prefix: {fired:?}"
    );
    println!("health_smoke: clean prefix of {EVENTS} events raised zero alarms");

    // Injected stall: 15 virtual seconds of silence vs the 10 s budget.
    let stall_t = now_ns() + 15 * S;
    let fired = monitor.evaluate_at(stall_t);
    assert!(
        fired.len() == 1 && fired[0].kind == HealthEventKind::HeartbeatStale,
        "injected stall not detected exactly once: {fired:?}"
    );
    println!("health_smoke: injected stall detected ({})", fired[0]);

    // Injected quality regression: audited live energy inflated 40%.
    engine.set_audit_energy_inflation(0.40);
    let regret = engine.force_audit().expect("audit configured");
    let fired = monitor.evaluate_at(stall_t + 1);
    assert!(
        fired.len() == 1 && fired[0].kind == HealthEventKind::EnergyRegret,
        "injected regression (regret {regret:+.3}) not detected exactly once: {fired:?}"
    );
    println!("health_smoke: injected regression detected ({})", fired[0]);

    let kinds: Vec<HealthEventKind> = monitor.events().iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            HealthEventKind::HeartbeatStale,
            HealthEventKind::EnergyRegret
        ],
        "stream must produce exactly the two injected events"
    );
    let report = monitor.report();
    assert_eq!(report.breaches, 2);
    assert_eq!(report.divergences, 0, "live plan diverged from offline");

    // --- 2. byte-identity with the full health stack enabled ---
    engine.set_audit_energy_inflation(0.0);
    let request = engine.as_request();
    let got = engine.outcome();
    for workers in [1usize, 4, 8] {
        let want = Engine::with_threads(workers)
            .run(&request)
            .expect("offline run failed");
        use esched_obs::json::ToJson;
        assert!(
            got == want && got.to_json().to_string() == want.to_json().to_string(),
            "health-enabled outcome diverged from offline at {workers} workers"
        );
    }
    println!(
        "health_smoke: {EVENTS}-event stream byte-identical to offline at 1/4/8 workers (final n={})",
        engine.len()
    );

    // --- 3 & 4. hot-path overhead + benchjson coverage ---
    let mut ratio = f64::INFINITY;
    let mut last_results = Vec::new();
    for attempt in 1..=OVERHEAD_RETRIES {
        let mut results = Vec::new();
        for mut bench in harness::curated_suite() {
            if bench.name.starts_with("online/health_overhead_") {
                results.push(harness::run_entry(&mut bench));
            }
        }
        let p50 = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.wall_ns.p50)
                .expect("overhead entry missing")
        };
        ratio = p50("online/health_overhead_on") / p50("online/health_overhead_off");
        println!(
            "health_smoke: attempt {attempt}: health on/off p50 ratio {ratio:.4} \
             (on {:.3} ms, off {:.3} ms)",
            p50("online/health_overhead_on") / 1e6,
            p50("online/health_overhead_off") / 1e6,
        );
        last_results = results;
        if ratio <= MAX_OVERHEAD {
            break;
        }
    }
    assert!(
        ratio <= MAX_OVERHEAD,
        "health layer costs {:.2}% on the replan hot path (budget {:.0}%)",
        (ratio - 1.0) * 100.0,
        (MAX_OVERHEAD - 1.0) * 100.0
    );

    let doc = harness::results_to_json(&last_results);
    let names: Vec<&str> = doc
        .get("entries")
        .and_then(Value::as_array)
        .expect("entries array")
        .iter()
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    for want in ["online/health_overhead_on", "online/health_overhead_off"] {
        assert!(
            names.contains(&want),
            "{want} missing from benchjson entries: {names:?}"
        );
    }
    println!("health_smoke: OK");
}
