//! `online_smoke` — the CI gate for the online arrival engine.
//!
//! Three checks, all fatal on failure:
//!
//! 1. **Byte-identity under load**: streams 512 deterministic
//!    arrival/completion/shift events through [`OnlineEngine`],
//!    spot-checking every 128 events and finally asserting the online
//!    outcome is byte-identical (struct equality *and* JSON text) to the
//!    offline pipeline at 1, 4, and 8 workers.
//! 2. **Replan speedup**: at n=1024 the median incremental replan must be
//!    at least 5× faster than a from-scratch `execute` of the same
//!    mutated instance.
//! 3. **Benchjson coverage**: the curated `online/*` entries run and the
//!    emitted document contains `online/replan_p99`, so the perf gate
//!    actually tracks the replan path.
//!
//! CI runs this with `ESCHED_ENGINE_THREADS=4`; the explicit
//! `Engine::with_threads` calls below cover 1 and 8 regardless.

use esched_bench::harness;
use esched_bench::paper_tasks;
use esched_engine::{Engine, OnlineEngine, OnlineEvent};
use esched_obs::json::Value;
use esched_types::{PolynomialPower, Task};
use std::time::Instant;

/// Spot-check cadence during the stream (and the stream length).
const EVENTS: usize = 512;
const CHECK_EVERY: usize = 128;
/// The acceptance bar: incremental replan vs. from-scratch execute.
const MIN_SPEEDUP: f64 = 5.0;

fn assert_byte_identical(engine: &mut OnlineEngine, workers: &[usize], context: &str) {
    let request = engine.as_request();
    let got = engine.outcome();
    for &w in workers {
        let want = Engine::with_threads(w)
            .run(&request)
            .expect("offline run failed");
        assert!(
            got == want,
            "{context}: outcome diverged from offline at {w} workers"
        );
        use esched_obs::json::ToJson;
        assert!(
            got.to_json().to_string() == want.to_json().to_string(),
            "{context}: JSON encoding diverged from offline at {w} workers"
        );
    }
}

/// The deterministic 512-event stream: arrivals (half off-grid, half
/// snapped onto an existing deadline), completions at 80% of `C_i`, and
/// ±0.3 window slides.
fn event_for(i: usize, engine: &OnlineEngine) -> OnlineEvent {
    let n = engine.len();
    match i % 4 {
        0 | 3 => {
            let release = if i % 8 == 3 {
                // Snap onto an existing boundary: the patch-vs-rebuild
                // decision point.
                engine.tasks().get((i * 13) % n).deadline
            } else {
                (i as f64 * 0.381) % 45.0
            };
            let window = 2.0 + ((i * 7) % 13) as f64 * 0.5;
            OnlineEvent::Arrive(Task::of(release, release + window, 0.3 + 0.4 * window))
        }
        1 => {
            let task = (i * 31) % n;
            OnlineEvent::Complete {
                task,
                actual_work: engine.tasks().get(task).wcec * 0.8,
            }
        }
        _ => {
            let task = (i * 17) % n;
            let t = *engine.tasks().get(task);
            let delta = if i % 8 < 4 { 0.3 } else { -0.3 };
            OnlineEvent::Shift {
                task,
                release: t.release + delta,
                deadline: t.deadline + delta,
            }
        }
    }
}

fn median_ns(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    samples[samples.len() / 2]
}

fn main() {
    let power = PolynomialPower::paper(3.0, 0.1);

    // --- 1. byte-identity over the 512-event stream ---
    let mut engine = OnlineEngine::new(paper_tasks(64, 9), 8, power);
    for i in 0..EVENTS {
        let event = event_for(i, &engine);
        engine.apply(&event).expect("stream event rejected");
        if (i + 1) % CHECK_EVERY == 0 {
            assert_byte_identical(&mut engine, &[1], &format!("after event {}", i + 1));
            println!(
                "online_smoke: {} events applied, n={}, outcome matches offline",
                i + 1,
                engine.len()
            );
        }
    }
    assert_byte_identical(&mut engine, &[1, 4, 8], "after the full stream");
    println!(
        "online_smoke: {EVENTS}-event stream byte-identical to offline at 1/4/8 workers (final n={})",
        engine.len()
    );

    // --- 2. replan-vs-execute speedup at n=1024 ---
    let mut big = OnlineEngine::new(paper_tasks(1024, 3), 8, power);
    let mut replan_ns = Vec::with_capacity(20);
    for i in 0..20usize {
        let id = (i * 193) % big.len();
        let t = *big.tasks().get(id);
        let delta = if i.is_multiple_of(2) { 0.25 } else { -0.25 };
        let event = OnlineEvent::Shift {
            task: id,
            release: t.release + delta,
            deadline: t.deadline + delta,
        };
        let t0 = Instant::now();
        big.apply(&event).expect("replan event rejected");
        replan_ns.push(t0.elapsed().as_nanos() as f64);
    }
    let request = big.as_request();
    let offline = Engine::with_threads(1);
    let mut exec_ns = Vec::with_capacity(3);
    for _ in 0..3 {
        let t0 = Instant::now();
        offline.run(&request).expect("offline run failed");
        exec_ns.push(t0.elapsed().as_nanos() as f64);
    }
    let replan = median_ns(&mut replan_ns);
    let exec = median_ns(&mut exec_ns);
    let speedup = exec / replan;
    println!(
        "online_smoke: n=1024 replan p50 {:.3} ms, from-scratch execute p50 {:.3} ms, speedup {speedup:.1}x",
        replan / 1e6,
        exec / 1e6
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "incremental replan is only {speedup:.1}x faster than from-scratch execute (need >= {MIN_SPEEDUP}x)"
    );

    // --- 3. the curated online entries land in benchjson ---
    let mut results = Vec::new();
    for mut bench in harness::curated_suite() {
        if bench.name.starts_with("online/") {
            results.push(harness::run_entry(&mut bench));
        }
    }
    let doc = harness::results_to_json(&results);
    let names: Vec<&str> = doc
        .get("entries")
        .and_then(Value::as_array)
        .expect("entries array")
        .iter()
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    assert!(
        names.contains(&"online/replan_p99"),
        "online/replan_p99 missing from benchjson entries: {names:?}"
    );
    for r in &results {
        println!(
            "online_smoke: benchjson entry {} p50 {:.3} ms",
            r.name,
            r.wall_ns.p50 / 1e6
        );
    }
    println!("online_smoke: OK");
}
