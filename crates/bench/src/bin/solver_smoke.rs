//! `solver_smoke` — the CI gate for the decomposed ADMM E^OPT solver.
//!
//! Three checks at n = 4096 (grid-snapped `WorkloadSpec::large_n`, the
//! scale where a full interior-point solve takes minutes), all fatal on
//! failure:
//!
//! 1. **Fig8-style cores sweep certifies**: every point of the
//!    `m ∈ {2, 4, 6, 8, 10, 12}` sweep (`α = 3`, `p₀ = 0.2`), solved by
//!    [`solve_admm_in`] with the primal *and dual* point warm-chained
//!    between sweep positions, must converge AND pass the independent
//!    KKT certificate at 1e-5 — the same bar every serial solver is held
//!    to.
//! 2. **≥5× vs interior point**: the best-of-3 cold ADMM solve at
//!    `m = 4` must beat the best-of-3 interior-point time by at least
//!    5×. The interior-point runs are iteration-capped to keep the job
//!    bounded: a capped run that is *still* slower than 5× ADMM without
//!    having converged lower-bounds the full solve, so the comparison
//!    stays honest while CI stays minutes, not hours.
//! 3. **Byte-identity across worker counts**: the cold `m = 4` solve
//!    repeated on explicit 1-, 4-, and 8-worker pools must agree
//!    bit-for-bit in primal, dual, objective, gap, and iteration count.
//!    CI additionally launches this binary under
//!    `ESCHED_ENGINE_THREADS=4`, which sizes every pool the harness
//!    creates implicitly; the explicit pools cover 1 and 8 regardless.

use esched_core::Pool;
use esched_opt::{kkt_report, solve_admm_in, EnergyProgram, SolveOptions, SolverKind};
use esched_subinterval::Timeline;
use esched_types::PolynomialPower;
use esched_workload::WorkloadSpec;
use std::time::Instant;

const N: usize = 4096;
const SWEEP_CORES: [usize; 6] = [2, 4, 6, 8, 10, 12];
const KKT_TOL: f64 = 1e-5;
const MIN_SPEEDUP: f64 = 5.0;
/// Iteration cap for the interior-point reference runs (check 2): enough
/// Newton steps to prove the 5× bound one way or the other at this size,
/// small enough to keep the job bounded.
const IP_ITER_CAP: usize = 10;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn main() {
    let tasks = WorkloadSpec::large_n(N).instantiate(3);
    let tl = Timeline::build(&tasks);
    let power = PolynomialPower::paper(3.0, 0.2);
    let pool = Pool::with_threads(8);

    // --- 1. fig8-style cores sweep, every point KKT-certified ---
    let mut warm: Option<(Vec<f64>, Vec<f64>)> = None;
    for cores in SWEEP_CORES {
        let ep = EnergyProgram::new(&tasks, &tl, cores, power);
        let mut opts = SolveOptions::fast();
        if let Some((x, y)) = warm.take() {
            opts = opts.with_warm_start(x).with_warm_start_dual(y);
        }
        let t0 = Instant::now();
        let r = solve_admm_in(&ep, &opts, &pool);
        let wall = t0.elapsed().as_secs_f64();
        assert!(
            r.converged,
            "cores={cores}: admm did not converge (gap {:e})",
            r.gap
        );
        let kkt = kkt_report(&ep, &r.x);
        assert!(
            kkt.is_optimal(KKT_TOL),
            "cores={cores}: KKT certificate failed (residual {:e}, gap {:e})",
            kkt.projected_gradient_residual,
            kkt.duality_gap
        );
        println!(
            "solver_smoke: cores={cores} certified in {wall:.2}s ({} iters, obj {:.6e})",
            r.iters, r.objective
        );
        let dual = r.dual.clone().expect("admm returns its dual point");
        warm = Some((r.x, dual));
    }

    // --- 2. >=5x vs interior point, best of 3, m = 4 ---
    let ep = EnergyProgram::new(&tasks, &tl, 4, power);
    let mut admm_best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let r = solve_admm_in(&ep, &SolveOptions::fast(), &pool);
        let wall = t0.elapsed().as_secs_f64();
        assert!(r.converged, "cold admm at m=4 did not converge");
        admm_best = admm_best.min(wall);
    }
    let mut ip_best = f64::INFINITY;
    let mut ip_converged = false;
    for _ in 0..3 {
        let mut opts = SolveOptions::fast();
        opts.max_iters = IP_ITER_CAP;
        let t0 = Instant::now();
        let r = SolverKind::InteriorPoint.solve(&ep, &opts);
        let wall = t0.elapsed().as_secs_f64();
        ip_best = ip_best.min(wall);
        ip_converged |= r.converged;
    }
    let speedup = ip_best / admm_best;
    // A capped, non-converged interior-point run lower-bounds the full
    // solve; if even that is 5x slower the claim holds with margin.
    assert!(
        speedup >= MIN_SPEEDUP,
        "admm best {admm_best:.2}s vs interior-point best {ip_best:.2}s \
         (capped at {IP_ITER_CAP} iters, converged: {ip_converged}): \
         speedup {speedup:.1}x < {MIN_SPEEDUP}x"
    );
    println!(
        "solver_smoke: admm {admm_best:.2}s vs interior-point {ip_best:.2}s \
         ({}) -> {speedup:.1}x (>= {MIN_SPEEDUP}x required)",
        if ip_converged {
            "full solve"
        } else {
            "lower bound, iteration-capped"
        }
    );

    // --- 3. byte-identity at 1, 4, 8 workers ---
    let reference = solve_admm_in(&ep, &SolveOptions::fast(), &Pool::with_threads(1));
    for workers in [4usize, 8] {
        let r = solve_admm_in(&ep, &SolveOptions::fast(), &Pool::with_threads(workers));
        assert_eq!(
            bits(&r.x),
            bits(&reference.x),
            "{workers} workers: primal diverged from serial"
        );
        assert_eq!(
            r.dual.as_deref().map(bits),
            reference.dual.as_deref().map(bits),
            "{workers} workers: dual diverged from serial"
        );
        assert_eq!(r.objective.to_bits(), reference.objective.to_bits());
        assert_eq!(r.gap.to_bits(), reference.gap.to_bits());
        assert_eq!(r.iters, reference.iters);
    }
    println!("solver_smoke: n={N} m=4 solve byte-identical at 1/4/8 workers");
}
