//! Deterministic benchmark harness behind the `benchjson` binary.
//!
//! Criterion's statistical machinery is great interactively but awkward
//! for regression gating: sample counts adapt to noise, output lands in
//! `target/criterion`, and nothing ties a run to a commit. This module
//! runs a small curated subset of the bench suite with *fixed* iteration
//! counts, records wall-time percentiles plus a metrics-registry delta
//! per entry, and serializes everything into the stable `BENCH_*.json`
//! schema that `benchjson --compare` diffs.
//!
//! The curated entries mirror `benches/micro_primitives.rs`,
//! `benches/runtime_scaling.rs`, and `benches/solver_ablation.rs` — same
//! fixtures, same seeds — so a regression flagged here reproduces under
//! `cargo bench` for a closer look.

use crate::paper_tasks;
use esched_core::{
    allocate, der_schedule, even_schedule, ideal_schedule, optimal_energy, pack_subinterval,
    AllocRequest, DerStrategy, PackItem, Pool, DEFAULT_PARALLEL_THRESHOLD,
};
use esched_engine::{Engine, EngineConfig, OnlineEngine, OnlineEvent, ScheduleRequest};
use esched_obs::health::SloPolicy;
use esched_obs::json::Value;
use esched_obs::stats::Summary;
use esched_obs::{metrics, report};
use esched_opt::{
    solve_admm_in, solve_fista, solve_frank_wolfe, solve_pgd, EnergyProgram, SolveOptions,
    SolverKind,
};
use esched_subinterval::Timeline;
use esched_types::{validate_schedule, PolynomialPower, Schedule};
use esched_workload::WorkloadSpec;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Version of the `BENCH_*.json` schema this harness writes.
pub const SCHEMA_VERSION: u64 = 1;

/// Default regression threshold for [`compare`]: a current p50 more than
/// 25% above the baseline p50 fails the gate.
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// Whether a regression on `name` fails the gate (vs. advisory only).
///
/// `micro/*` entries time single deterministic primitives with fixed
/// inputs, so their p50s are stable enough to fail CI on; `online/*`
/// entries are equally deterministic single-threaded work and guard the
/// incremental-replan latency claim, and `opt/admm/*` entries run a
/// fixed warm-chained sweep with deterministic task-chunking (the work
/// is a machine-independent iteration count, so even the 16k point is
/// stable enough to gate). Everything else (`opt/*` serial-solver
/// sweeps, `engine/*` pool timings, `scaling/*`, `ablation/*`) is
/// iteration-count- and scheduler-noise-prone and stays advisory — as
/// are the remaining large-n scaling entries (`…/16k`, `…/65k`,
/// `…/262k`), whose few-iteration runs on shared CI hardware are too
/// noisy to fail on.
pub fn gating(name: &str) -> bool {
    if name.starts_with("opt/admm/") {
        return true;
    }
    let large_n = name.ends_with("/16k") || name.ends_with("/65k") || name.ends_with("/262k");
    (name.starts_with("micro/") || name.starts_with("online/")) && !large_n
}

/// One curated benchmark: a name, a fixed iteration count, and the
/// closure to time.
pub struct CuratedBench {
    /// Stable entry name (`suite/case/size`), the join key for compares.
    pub name: &'static str,
    /// Timed iterations (fixed, so runs are comparable).
    pub iters: usize,
    /// The workload; timed once per iteration.
    pub run: Box<dyn FnMut()>,
}

/// Measured outcome of one curated entry.
pub struct BenchResult {
    /// Entry name.
    pub name: &'static str,
    /// Timed iterations.
    pub iters: usize,
    /// Per-iteration wall time in nanoseconds.
    pub wall_ns: Summary,
    /// Metrics-registry delta over the timed iterations.
    pub metrics: metrics::Snapshot,
}

/// The curated suite: a fast-running subset of the criterion benches
/// (micro-primitives, runtime scaling, solver ablation, online replan)
/// with fixed seeds and iteration counts. A couple dozen entries, a few
/// seconds total in release.
pub fn curated_suite() -> Vec<CuratedBench> {
    let power = PolynomialPower::paper(3.0, 0.1);
    let mut suite: Vec<CuratedBench> = Vec::new();

    // --- micro_primitives subset ---
    let tasks80 = paper_tasks(80, 3);
    let tl80 = Timeline::build(&tasks80);
    let ideal80 = ideal_schedule(&tasks80, &power);
    {
        let tasks = tasks80.clone();
        suite.push(CuratedBench {
            name: "micro/timeline_build/80",
            iters: 200,
            run: Box::new(move || {
                black_box(Timeline::build(&tasks));
            }),
        });
    }
    {
        let (tasks, tl, ideal) = (tasks80.clone(), tl80.clone(), ideal80.clone());
        suite.push(CuratedBench {
            name: "micro/der_alloc/80",
            iters: 200,
            run: Box::new(move || {
                black_box(allocate(AllocRequest::new(&tasks, &tl, 4, &ideal)));
            }),
        });
    }
    // Large-n micro entries: the asymptotic regime the water-filling
    // allocator and sweep-line build were written for. The paired
    // `der_alloc`/`der_alloc_reference` entries at 1024 are measured in
    // the same run so their p50 ratio is a same-machine speedup figure.
    for n in [512usize, 1024] {
        let tasks = paper_tasks(n, 3);
        let tl = Timeline::build(&tasks);
        let ideal = ideal_schedule(&tasks, &power);
        let iters = if n == 512 { 24 } else { 12 };
        {
            let (tasks, tl, ideal) = (tasks.clone(), tl.clone(), ideal.clone());
            suite.push(CuratedBench {
                name: if n == 512 {
                    "micro/der_alloc/512"
                } else {
                    "micro/der_alloc/1024"
                },
                iters,
                run: Box::new(move || {
                    black_box(allocate(AllocRequest::new(&tasks, &tl, 4, &ideal)));
                }),
            });
        }
        if n == 1024 {
            {
                let (tasks, tl, ideal) = (tasks.clone(), tl.clone(), ideal.clone());
                suite.push(CuratedBench {
                    name: "micro/der_alloc_reference/1024",
                    iters,
                    run: Box::new(move || {
                        black_box(allocate(
                            AllocRequest::new(&tasks, &tl, 4, &ideal)
                                .strategy(DerStrategy::Reference),
                        ));
                    }),
                });
            }
            let tasks = tasks.clone();
            suite.push(CuratedBench {
                name: "micro/timeline_build/1024",
                iters: 24,
                run: Box::new(move || {
                    black_box(Timeline::build(&tasks));
                }),
            });
        }
    }
    // Flight-recorder overhead on the 1024-task DER allocation, which
    // carries a `flight_span!` on its hot entry point. The on/off pair is
    // measured in the same run; the acceptance target is <3% p50 overhead
    // when recording and ~0 when disabled.
    {
        let tasks = paper_tasks(1024, 3);
        let tl = Timeline::build(&tasks);
        let ideal = ideal_schedule(&tasks, &power);
        for on in [true, false] {
            let (tasks, tl, ideal) = (tasks.clone(), tl.clone(), ideal.clone());
            suite.push(CuratedBench {
                name: if on {
                    "micro/obs_overhead/recorder_on"
                } else {
                    "micro/obs_overhead/recorder_off"
                },
                iters: 12,
                run: Box::new(move || {
                    let was = esched_obs::recorder::is_enabled();
                    esched_obs::recorder::set_enabled(on);
                    black_box(allocate(AllocRequest::new(&tasks, &tl, 4, &ideal)));
                    esched_obs::recorder::set_enabled(was);
                }),
            });
        }
    }
    // --- large-n scaling entries (grid-snapped WorkloadSpec::large_n
    // instances, so CSR cells stay O(n) and a 262 144-task timeline fits
    // comfortably in memory). der_alloc entries run the vectorized
    // water-fill with intra-instance fan-out across an 8-worker pool;
    // der_alloc_serial/65k is the round-based serial scalar path measured
    // in the same run, so the p50 ratio of the 65k pair is a same-machine
    // speedup figure. All large-n names are advisory (`gating` excludes
    // them): a handful of iterations on shared CI hardware is too noisy
    // to fail the build on.
    // Fixtures are built lazily on the first (warmup) call — `run_entry`
    // always warms up at least once before the timed bracket — so merely
    // constructing the suite (as the unit tests do, in debug) never pays
    // for a 262 144-task timeline.
    {
        struct LargeFixture {
            tasks: esched_types::TaskSet,
            tl: Timeline,
            ideal: esched_core::IdealSolution,
        }
        let build = move |n: usize| {
            let tasks = WorkloadSpec::large_n(n).instantiate(3);
            let tl = Timeline::build(&tasks);
            let ideal = ideal_schedule(&tasks, &power);
            LargeFixture { tasks, tl, ideal }
        };
        let pool = Pool::with_threads(8);
        for (name, n, iters) in [
            ("micro/der_alloc/16k", 16_384usize, 16usize),
            ("micro/der_alloc/65k", 65_536, 8),
            ("micro/der_alloc/262k", 262_144, 3),
        ] {
            let pool = pool.clone();
            let mut fixture: Option<LargeFixture> = None;
            suite.push(CuratedBench {
                name,
                iters,
                run: Box::new(move || {
                    let fx = fixture.get_or_insert_with(|| build(n));
                    black_box(allocate(
                        AllocRequest::new(&fx.tasks, &fx.tl, 4, &fx.ideal)
                            .with_pool(&pool)
                            .with_parallel_threshold(DEFAULT_PARALLEL_THRESHOLD),
                    ));
                }),
            });
        }
        {
            let mut fixture: Option<LargeFixture> = None;
            suite.push(CuratedBench {
                name: "micro/der_alloc_serial/65k",
                iters: 4,
                run: Box::new(move || {
                    let fx = fixture.get_or_insert_with(|| build(65_536));
                    black_box(allocate(
                        AllocRequest::new(&fx.tasks, &fx.tl, 4, &fx.ideal)
                            .strategy(DerStrategy::Reference),
                    ));
                }),
            });
        }
        {
            let mut tasks: Option<esched_types::TaskSet> = None;
            suite.push(CuratedBench {
                name: "micro/timeline_build/65k",
                iters: 8,
                run: Box::new(move || {
                    let ts =
                        tasks.get_or_insert_with(|| WorkloadSpec::large_n(65_536).instantiate(3));
                    black_box(Timeline::build(ts));
                }),
            });
        }
    }

    {
        let items: Vec<PackItem> = (0..24)
            .map(|i| PackItem {
                task: i,
                duration: 0.2 + 0.4 * (i as f64 * 0.23).fract(),
                freq: 1.0,
            })
            .collect();
        suite.push(CuratedBench {
            name: "micro/pack/24",
            iters: 400,
            run: Box::new(move || {
                let mut s = Schedule::new(8);
                pack_subinterval(black_box(&items), 0.0, 2.0, 8, &mut s).unwrap();
                black_box(s);
            }),
        });
    }
    {
        let tasks = paper_tasks(40, 17);
        let out = der_schedule(&tasks, 4, &power);
        suite.push(CuratedBench {
            name: "micro/validate/40",
            iters: 200,
            run: Box::new(move || {
                black_box(validate_schedule(&out.schedule, &tasks));
            }),
        });
    }

    // --- runtime_scaling subset ---
    {
        let tasks = paper_tasks(80, 99);
        let p = power;
        suite.push(CuratedBench {
            name: "scaling/heuristic_der/80",
            iters: 60,
            run: Box::new(move || {
                black_box(der_schedule(&tasks, 4, &p).final_energy);
            }),
        });
    }
    {
        let tasks = paper_tasks(80, 99);
        let p = power;
        suite.push(CuratedBench {
            name: "scaling/heuristic_even/80",
            iters: 60,
            run: Box::new(move || {
                black_box(even_schedule(&tasks, 4, &p).final_energy);
            }),
        });
    }
    {
        let tasks = paper_tasks(20, 99);
        let p = power;
        suite.push(CuratedBench {
            name: "scaling/convex_optimum/20",
            iters: 12,
            run: Box::new(move || {
                black_box(optimal_energy(&tasks, 4, &p, &SolveOptions::fast()).energy);
            }),
        });
    }

    // --- solver_ablation subset (same program, three first-order methods) ---
    let tasks20 = paper_tasks(20, 7);
    let tl20 = Timeline::build(&tasks20);
    for (name, which) in [
        ("ablation/pgd/20", 0usize),
        ("ablation/fista/20", 1),
        ("ablation/frank_wolfe/20", 2),
    ] {
        let (tasks, tl, p) = (tasks20.clone(), tl20.clone(), power);
        suite.push(CuratedBench {
            name,
            iters: 15,
            run: Box::new(move || {
                let ep = EnergyProgram::new(&tasks, &tl, 4, p);
                let opts = SolveOptions::fast();
                let obj = match which {
                    0 => solve_pgd(&ep, ep.initial_point(), &opts).objective,
                    1 => solve_fista(&ep, ep.initial_point(), &opts).objective,
                    _ => solve_frank_wolfe(&ep, ep.initial_point(), &opts).objective,
                };
                black_box(obj);
            }),
        });
    }

    // --- warm-started sweep (fig8 pattern: same instance, cores swept) ---
    // The energy program's dimension depends only on the timeline, not on
    // `m`, so a cores sweep is the canonical warm-start consumer: each
    // point's solve is seeded from the previous point's optimum. The cold
    // twin re-solves every point from the canonical interior start;
    // comparing the two entries' p50s in one run gives the warm-start
    // payoff figure.
    {
        let tasks = paper_tasks(24, 7);
        let tl = Timeline::build(&tasks);
        for warm in [false, true] {
            let (tasks, tl, p) = (tasks.clone(), tl.clone(), power);
            suite.push(CuratedBench {
                name: if warm {
                    "opt/warm_vs_cold/fig8"
                } else {
                    "opt/cold_sweep/fig8"
                },
                iters: 10,
                run: Box::new(move || {
                    let mut prev: Option<Vec<f64>> = None;
                    for cores in [2usize, 4, 8, 16] {
                        let ep = EnergyProgram::new(&tasks, &tl, cores, p);
                        let mut opts = SolveOptions::fast();
                        if warm {
                            opts.warm_start = prev.take();
                        }
                        let r = SolverKind::ProjectedGradient.solve(&ep, &opts);
                        black_box(r.objective);
                        prev = Some(r.x);
                    }
                }),
            });
        }
    }

    // --- decomposed ADMM solver at scale (fig8-style cores sweep) ---
    // Each timed iteration runs the cores sweep [2, 4, 8, 16] on one
    // grid-snapped `WorkloadSpec::large_n` instance, warm-chaining the
    // primal *and dual* point from one sweep position into the next —
    // exactly how `Engine`'s fig8 driver and the online engine consume
    // the solver. Fixtures are lazy (see the large-n note above). The
    // solver's per-task fan-out runs on an 8-worker pool; chunking is
    // deterministic, so these entries gate despite their size — the work
    // per iteration is a fixed, machine-independent iteration count.
    // `opt/interior_point/4096` is the serial Newton-step cost anchor for
    // the same sweep: `max_iters = 1` bounds it to one factorization per
    // sweep point (a full interior-point solve at this size takes minutes,
    // and one step is the stable unit to track). It stays advisory; the
    // ≥5x end-to-end speedup claim is asserted by the `solver_smoke`
    // binary, not by this timing.
    {
        let pool = Pool::with_threads(8);
        for (name, n, iters) in [
            ("opt/admm/1024", 1024usize, 6usize),
            ("opt/admm/4096", 4096, 4),
            ("opt/admm/16k", 16_384, 3),
        ] {
            let pool = pool.clone();
            let p = power;
            let mut fixture: Option<(esched_types::TaskSet, Timeline)> = None;
            suite.push(CuratedBench {
                name,
                iters,
                run: Box::new(move || {
                    let (tasks, tl) = fixture.get_or_insert_with(|| {
                        let tasks = WorkloadSpec::large_n(n).instantiate(3);
                        let tl = Timeline::build(&tasks);
                        (tasks, tl)
                    });
                    let mut warm: Option<(Vec<f64>, Vec<f64>)> = None;
                    for cores in [2usize, 4, 8, 16] {
                        let ep = EnergyProgram::new(tasks, tl, cores, p);
                        let mut opts = SolveOptions::fast();
                        if let Some((x, y)) = warm.take() {
                            opts = opts.with_warm_start(x).with_warm_start_dual(y);
                        }
                        let r = solve_admm_in(&ep, &opts, &pool);
                        black_box(r.objective);
                        let dual = r.dual.clone().unwrap_or_default();
                        warm = Some((r.x, dual));
                    }
                }),
            });
        }
        {
            let p = power;
            let mut fixture: Option<(esched_types::TaskSet, Timeline)> = None;
            suite.push(CuratedBench {
                name: "opt/interior_point/4096",
                iters: 2,
                run: Box::new(move || {
                    let (tasks, tl) = fixture.get_or_insert_with(|| {
                        let tasks = WorkloadSpec::large_n(4096).instantiate(3);
                        let tl = Timeline::build(&tasks);
                        (tasks, tl)
                    });
                    for cores in [2usize, 4, 8, 16] {
                        let ep = EnergyProgram::new(tasks, tl, cores, p);
                        let mut opts = SolveOptions::fast();
                        opts.max_iters = 1;
                        black_box(SolverKind::InteriorPoint.solve(&ep, &opts).objective);
                    }
                }),
            });
        }
    }

    // --- engine batch execution ---
    // 64 full-pipeline instances (DER + fast E^OPT solve) per iteration,
    // serial vs. 8 workers. The speedup criterion compares these two
    // entries' p50s; on a single-core runner they coincide.
    {
        let requests: Vec<ScheduleRequest> = (0..64)
            .map(|k| {
                ScheduleRequest::new(paper_tasks(20, 1000 + k as u64), 4, power).with_config(
                    EngineConfig::new()
                        .with_solver(SolverKind::ProjectedGradient)
                        .with_solve_options(SolveOptions::fast()),
                )
            })
            .collect();
        for (name, threads) in [("engine/batch_64x/1t", 1usize), ("engine/batch_64x/8t", 8)] {
            let reqs = requests.clone();
            suite.push(CuratedBench {
                name,
                iters: 6,
                run: Box::new(move || {
                    black_box(Engine::with_threads(threads).run_batch(&reqs));
                }),
            });
        }
    }
    // Pool scaling at 8 threads over a wide batch of cheap heuristic-only
    // instances: dominated by queueing/stealing overhead, so it catches
    // pool regressions the solver-heavy entry would mask.
    {
        let requests: Vec<ScheduleRequest> = (0..128)
            .map(|k| ScheduleRequest::new(paper_tasks(40, 2000 + k as u64), 4, power))
            .collect();
        suite.push(CuratedBench {
            name: "engine/scaling_8t/128",
            iters: 6,
            run: Box::new(move || {
                black_box(Engine::with_threads(8).run_batch(&requests));
            }),
        });
    }

    // --- online incremental replanning ---
    // One event applied per timed iteration against a persistent
    // 1024-task online engine, paired with a from-scratch execute of the
    // same mutated instance: the two p50s in one run give the
    // incremental-replan speedup (the acceptance bar is ≥5×, asserted by
    // the `online_smoke` binary). Events slide task windows by ±0.25 with
    // a stride coprime to n, so the engine keeps replanning fresh
    // subintervals without the task set drifting unboundedly.
    {
        let tasks = paper_tasks(1024, 3);
        {
            let mut engine = OnlineEngine::new(tasks.clone(), 8, power);
            let n = tasks.len();
            let mut i = 0usize;
            suite.push(CuratedBench {
                name: "online/replan_p99",
                iters: 120,
                run: Box::new(move || {
                    let id = (i * 193) % n;
                    let t = *engine.tasks().get(id);
                    let delta = if i.is_multiple_of(2) { 0.25 } else { -0.25 };
                    let event = OnlineEvent::Shift {
                        task: id,
                        release: t.release + delta,
                        deadline: t.deadline + delta,
                    };
                    black_box(engine.apply(&event).expect("replan event rejected"));
                    i += 1;
                }),
            });
        }
        {
            let mut engine = OnlineEngine::new(tasks, 8, power);
            let t = *engine.tasks().get(0);
            engine
                .apply(&OnlineEvent::Shift {
                    task: 0,
                    release: t.release + 0.25,
                    deadline: t.deadline + 0.25,
                })
                .expect("mutation rejected");
            let request = engine.as_request();
            suite.push(CuratedBench {
                name: "online/offline_execute",
                iters: 6,
                run: Box::new(move || {
                    black_box(
                        Engine::with_threads(1)
                            .run(&request)
                            .expect("offline run failed"),
                    );
                }),
            });
        }
    }

    // --- health-layer overhead on the replan hot path ---
    // The same sliding-shift stream as online/replan_p99, once bare and
    // once with the full health stack recording every event (windowed
    // sketches + rate-limited SLO evaluation; the audit sampler is off —
    // it runs on a background worker and never blocks the hot path).
    // The acceptance bar — on/off ≤ 1.02 — is asserted by the
    // `health_smoke` binary; here both p50s are compare-gated so either
    // side regressing trips CI.
    for (name, with_health) in [
        ("online/health_overhead_off", false),
        ("online/health_overhead_on", true),
    ] {
        let tasks = paper_tasks(1024, 3);
        let n = tasks.len();
        let mut engine = OnlineEngine::new(tasks, 8, power);
        if with_health {
            engine = engine.with_health(
                SloPolicy::new(Duration::from_secs(10))
                    .with_replan_p99(Duration::from_secs(1))
                    .with_regret_ceiling(0.5)
                    .with_fallback_rate_ceiling(1.0)
                    .with_heartbeat_timeout(Duration::from_secs(60)),
            );
        }
        let mut i = 0usize;
        suite.push(CuratedBench {
            name,
            iters: 120,
            run: Box::new(move || {
                let id = (i * 193) % n;
                let t = *engine.tasks().get(id);
                let delta = if i.is_multiple_of(2) { 0.25 } else { -0.25 };
                let event = OnlineEvent::Shift {
                    task: id,
                    release: t.release + delta,
                    deadline: t.deadline + delta,
                };
                black_box(engine.apply(&event).expect("replan event rejected"));
                i += 1;
            }),
        });
    }

    suite
}

/// Run one curated entry: a short warmup, then `iters` timed iterations
/// bracketed by metrics snapshots.
pub fn run_entry(bench: &mut CuratedBench) -> BenchResult {
    let warmup = (bench.iters / 10).max(1);
    for _ in 0..warmup {
        (bench.run)();
    }
    let before = metrics::snapshot();
    let mut samples = Vec::with_capacity(bench.iters);
    for _ in 0..bench.iters {
        let t0 = Instant::now();
        (bench.run)();
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    let delta = metrics::snapshot().delta_since(&before);
    BenchResult {
        name: bench.name,
        iters: bench.iters,
        wall_ns: Summary::of(&samples),
        metrics: delta,
    }
}

/// Run the whole curated suite, reporting progress through `progress`
/// (called with each entry name before it runs; pass `|_| {}` to
/// silence).
pub fn run_suite(mut progress: impl FnMut(&str)) -> Vec<BenchResult> {
    curated_suite()
        .iter_mut()
        .map(|b| {
            progress(b.name);
            run_entry(b)
        })
        .collect()
}

/// Serialize results into the `BENCH_*.json` document: a header tying
/// the run to a commit plus one object per entry.
pub fn results_to_json(results: &[BenchResult]) -> Value {
    let entries: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::obj(vec![
                ("name", Value::Str(r.name.to_string())),
                ("iters", Value::Num(r.iters as f64)),
                ("wall_ns", r.wall_ns.to_json()),
                ("metrics", r.metrics.to_json()),
            ])
        })
        .collect();
    Value::obj(vec![
        ("schema_version", Value::Num(SCHEMA_VERSION as f64)),
        (
            "git_sha",
            match report::git_short_sha() {
                Some(sha) => Value::Str(sha.to_string()),
                None => Value::Null,
            },
        ),
        (
            "esched_version",
            Value::Str(report::esched_version().to_string()),
        ),
        ("entries", Value::Arr(entries)),
    ])
}

/// One entry whose current p50 exceeds the baseline p50 by more than the
/// threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Entry name.
    pub name: String,
    /// Baseline p50 wall time, nanoseconds.
    pub base_p50: f64,
    /// Current p50 wall time, nanoseconds.
    pub cur_p50: f64,
    /// `cur_p50 / base_p50`.
    pub ratio: f64,
}

fn entry_p50s(doc: &Value) -> Result<Vec<(String, f64)>, String> {
    let entries = doc
        .get("entries")
        .and_then(Value::as_array)
        .ok_or("missing \"entries\" array")?;
    entries
        .iter()
        .map(|e| {
            let name = e
                .get("name")
                .and_then(Value::as_str)
                .ok_or("entry missing \"name\"")?;
            let p50 = e
                .get("wall_ns")
                .and_then(|w| w.get("p50"))
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("entry {name:?} missing wall_ns.p50"))?;
            Ok((name.to_string(), p50))
        })
        .collect()
}

/// Compare two `BENCH_*.json` documents. Returns the entries whose
/// current p50 regressed by more than `threshold` (0.25 = 25%).
///
/// The two documents must cover the same entry set: an entry present in
/// only one of them is an error, not a silent pass — a current entry with
/// no baseline would otherwise never be gated (the baseline must be
/// refreshed in the same change that adds a bench), and a baseline entry
/// with no current measurement means the gate silently narrowed. Also
/// errors on malformed documents.
pub fn compare(
    baseline: &Value,
    current: &Value,
    threshold: f64,
) -> Result<Vec<Regression>, String> {
    let base = entry_p50s(baseline)?;
    let cur = entry_p50s(current)?;
    let missing_in_baseline: Vec<&str> = cur
        .iter()
        .filter(|(n, _)| !base.iter().any(|(b, _)| b == n))
        .map(|(n, _)| n.as_str())
        .collect();
    let missing_in_current: Vec<&str> = base
        .iter()
        .filter(|(n, _)| !cur.iter().any(|(c, _)| c == n))
        .map(|(n, _)| n.as_str())
        .collect();
    if !missing_in_baseline.is_empty() || !missing_in_current.is_empty() {
        let mut parts = Vec::new();
        if !missing_in_baseline.is_empty() {
            parts.push(format!(
                "missing from baseline (refresh it): {}",
                missing_in_baseline.join(", ")
            ));
        }
        if !missing_in_current.is_empty() {
            parts.push(format!(
                "missing from current run: {}",
                missing_in_current.join(", ")
            ));
        }
        return Err(format!("entry sets differ: {}", parts.join("; ")));
    }
    let mut regressions = Vec::new();
    for (name, cur_p50) in &cur {
        let Some((_, base_p50)) = base.iter().find(|(n, _)| n == name) else {
            unreachable!("entry sets verified equal above");
        };
        if *base_p50 > 0.0 && *cur_p50 > base_p50 * (1.0 + threshold) {
            regressions.push(Regression {
                name: name.clone(),
                base_p50: *base_p50,
                cur_p50: *cur_p50,
                ratio: cur_p50 / base_p50,
            });
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(entries: &[(&str, f64)]) -> Value {
        Value::obj(vec![
            ("schema_version", Value::Num(1.0)),
            ("git_sha", Value::Str("abc1234".into())),
            ("esched_version", Value::Str("0.1.0".into())),
            (
                "entries",
                Value::Arr(
                    entries
                        .iter()
                        .map(|(n, p50)| {
                            Value::obj(vec![
                                ("name", Value::Str(n.to_string())),
                                ("iters", Value::Num(10.0)),
                                (
                                    "wall_ns",
                                    Value::obj(vec![
                                        ("count", Value::Num(10.0)),
                                        ("mean", Value::Num(*p50)),
                                        ("p50", Value::Num(*p50)),
                                        ("p95", Value::Num(*p50 * 1.2)),
                                        ("min", Value::Num(*p50 * 0.8)),
                                        ("max", Value::Num(*p50 * 1.5)),
                                    ]),
                                ),
                                ("metrics", Value::obj(vec![])),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn compare_flags_a_synthetic_2x_regression() {
        let base = doc(&[("a", 100.0), ("b", 100.0)]);
        let cur = doc(&[("a", 200.0), ("b", 110.0)]);
        let regs = compare(&base, &cur, DEFAULT_THRESHOLD).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "a");
        assert!((regs[0].ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn compare_tolerates_below_threshold_noise() {
        let base = doc(&[("a", 100.0)]);
        let cur = doc(&[("a", 124.0)]);
        assert!(compare(&base, &cur, DEFAULT_THRESHOLD).unwrap().is_empty());
    }

    #[test]
    fn compare_errors_on_missing_baseline_entry() {
        let base = doc(&[("a", 100.0)]);
        let cur = doc(&[("a", 100.0), ("brand_new", 9999.0)]);
        let err = compare(&base, &cur, DEFAULT_THRESHOLD).unwrap_err();
        assert!(err.contains("brand_new"), "unhelpful error: {err}");
        assert!(err.contains("missing from baseline"), "{err}");
    }

    #[test]
    fn compare_errors_on_missing_current_entry() {
        let base = doc(&[("a", 100.0), ("dropped", 50.0)]);
        let cur = doc(&[("a", 100.0)]);
        let err = compare(&base, &cur, DEFAULT_THRESHOLD).unwrap_err();
        assert!(err.contains("dropped"), "unhelpful error: {err}");
        assert!(err.contains("missing from current"), "{err}");
    }

    #[test]
    fn online_entries_are_present_and_gating() {
        let suite = curated_suite();
        assert!(suite.iter().any(|b| b.name == "online/replan_p99"));
        assert!(suite.iter().any(|b| b.name == "online/offline_execute"));
        assert!(suite.iter().any(|b| b.name == "online/health_overhead_on"));
        assert!(suite.iter().any(|b| b.name == "online/health_overhead_off"));
        assert!(gating("online/replan_p99"));
        assert!(gating("online/health_overhead_on"));
        assert!(!gating("engine/batch_64x/1t"));
    }

    #[test]
    fn large_n_entries_are_present_but_advisory() {
        let suite = curated_suite();
        for name in [
            "micro/der_alloc/16k",
            "micro/der_alloc/65k",
            "micro/der_alloc/262k",
            "micro/der_alloc_serial/65k",
            "micro/timeline_build/65k",
        ] {
            assert!(suite.iter().any(|b| b.name == name), "{name} missing");
            assert!(!gating(name), "{name} must stay advisory");
        }
        // The small-n micro entries still gate.
        assert!(gating("micro/der_alloc/1024"));
        assert!(gating("micro/timeline_build/80"));
    }

    #[test]
    fn admm_entries_gate_and_interior_point_anchor_is_advisory() {
        let suite = curated_suite();
        for name in ["opt/admm/1024", "opt/admm/4096", "opt/admm/16k"] {
            assert!(suite.iter().any(|b| b.name == name), "{name} missing");
            assert!(gating(name), "{name} must gate");
        }
        assert!(suite.iter().any(|b| b.name == "opt/interior_point/4096"));
        assert!(
            !gating("opt/interior_point/4096"),
            "anchor must stay advisory"
        );
        // The serial-solver sweeps stay advisory too.
        assert!(!gating("opt/warm_vs_cold/fig8"));
    }

    #[test]
    fn compare_rejects_malformed_documents() {
        let good = doc(&[("a", 100.0)]);
        let bad = Value::obj(vec![("nope", Value::Null)]);
        assert!(compare(&bad, &good, 0.25).is_err());
        assert!(compare(&good, &bad, 0.25).is_err());
    }

    #[test]
    fn suite_has_at_least_six_entries_with_stable_unique_names() {
        let suite = curated_suite();
        assert!(suite.len() >= 6, "only {} entries", suite.len());
        let mut names: Vec<&str> = suite.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len(), "duplicate entry names");
    }

    #[test]
    fn run_entry_produces_samples_and_metric_deltas() {
        let mut bench = curated_suite()
            .into_iter()
            .find(|b| b.name == "micro/timeline_build/80")
            .unwrap();
        bench.iters = 5;
        let r = run_entry(&mut bench);
        assert_eq!(r.wall_ns.count, 5);
        assert!(r.wall_ns.p50 > 0.0);
        assert!(r.wall_ns.p95 >= r.wall_ns.p50);
        // Timeline::build increments its build counter once per iteration
        // (warmup is outside the snapshot bracket).
        assert_eq!(
            r.metrics.counter("esched.subinterval.timeline_builds"),
            Some(5)
        );
    }

    #[test]
    fn results_json_has_header_and_entry_shape() {
        let mut bench = curated_suite().swap_remove(0);
        bench.iters = 3;
        let results = vec![run_entry(&mut bench)];
        let doc = results_to_json(&results);
        assert_eq!(doc.get("schema_version").and_then(Value::as_u64), Some(1));
        assert!(doc.get("esched_version").and_then(Value::as_str).is_some());
        let entries = doc.get("entries").and_then(Value::as_array).unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert!(e.get("wall_ns").and_then(|w| w.get("p50")).is_some());
        assert!(e.get("metrics").is_some());
        // Round-trips through the parser.
        let reparsed = esched_obs::json::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(entry_p50s(&reparsed).unwrap().len(), 1);
    }
}
