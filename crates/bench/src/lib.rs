//! Shared fixtures for the criterion benches.
//!
//! Each bench regenerates the computation behind one of the paper's
//! tables/figures (one Monte-Carlo point, not the full 100-trial sweep —
//! the sweep lives in `esched-experiments`) and measures its runtime.
//! This is where the paper's "lightweight, suitable for real-time
//! systems" claim becomes a measured number: the heuristics must sit
//! orders of magnitude below the convex solver.

use esched_types::TaskSet;
use esched_workload::{GeneratorConfig, IntensityDist, WorkloadGenerator};

pub mod harness;

/// A deterministic paper-style task set with `n` tasks.
pub fn paper_tasks(n: usize, seed: u64) -> TaskSet {
    WorkloadGenerator::new(GeneratorConfig::paper_default().with_tasks(n), seed).generate()
}

/// A deterministic paper-style task set with a custom intensity range.
pub fn intensity_tasks(n: usize, lo: f64, seed: u64) -> TaskSet {
    WorkloadGenerator::new(
        GeneratorConfig::paper_default()
            .with_tasks(n)
            .with_intensity(IntensityDist::Uniform { lo, hi: 1.0 }),
        seed,
    )
    .generate()
}

/// A deterministic XScale-configured task set.
pub fn xscale_tasks(n: usize, seed: u64) -> TaskSet {
    WorkloadGenerator::new(GeneratorConfig::xscale_default().with_tasks(n), seed).generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(paper_tasks(10, 1), paper_tasks(10, 1));
        assert_eq!(xscale_tasks(10, 1), xscale_tasks(10, 1));
        assert_eq!(intensity_tasks(10, 0.5, 1), intensity_tasks(10, 0.5, 1));
    }
}
