//! Minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, so `cargo bench` works in offline environments.
//!
//! It implements the subset of the criterion 0.5 API this workspace
//! uses — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId::new`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — with a simple calibrated timing loop instead of criterion's
//! statistical machinery. Results are printed as median/mean
//! nanoseconds-per-iteration over a fixed number of measurement batches.
//!
//! Not a drop-in replacement: no HTML reports, no outlier analysis, no
//! baseline comparisons. Good enough to detect order-of-magnitude
//! regressions and to verify "zero overhead when disabled" claims.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Target wall time per measurement batch.
const BATCH_TARGET: Duration = Duration::from_millis(20);
/// Number of measurement batches per benchmark.
const BATCHES: usize = 15;

/// Top-level harness handle, passed to each benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _parent: self,
            group: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the shim's batch count is
    /// fixed, so this is a no-op.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for criterion compatibility; no-op.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into_benchmark_id(), &mut f);
        self
    }

    /// Run one parameterized benchmark. The shim passes `input` through
    /// untouched, matching criterion's call shape.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.into_benchmark_id(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            per_iter: Vec::with_capacity(BATCHES),
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.group, id.label);
        match summarize(&bencher.per_iter) {
            Some((median, mean)) => println!(
                "  {label:<48} median {:>12}  mean {:>12}",
                fmt_ns(median),
                fmt_ns(mean)
            ),
            None => println!("  {label:<48} (no measurement — Bencher::iter not called)"),
        }
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per measurement batch.
    per_iter: Vec<f64>,
}

impl Bencher {
    /// Measure `routine`: warm up, calibrate a batch size to
    /// [`BATCH_TARGET`], then time [`BATCHES`] batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: grow the batch until it takes long enough to time.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= BATCH_TARGET || batch >= 1 << 30 {
                break;
            }
            // Scale toward the target, at least doubling.
            let scale = (BATCH_TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).min(64.0);
            batch = (batch as f64 * scale.max(2.0)).ceil() as u64;
        }
        self.per_iter.clear();
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.per_iter.push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }
}

/// Identifier for a single benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, matching criterion's display form.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id: a `BenchmarkId` or a plain name.
pub trait IntoBenchmarkId {
    /// Convert into the concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

fn summarize(per_iter: &[f64]) -> Option<(f64, f64)> {
    if per_iter.is_empty() {
        return None;
    }
    let mut xs = per_iter.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = xs[xs.len() / 2];
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    Some((median, mean))
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declare a benchmark group: `criterion_group!(benches, bench_a, bench_b)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark entry point: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_orders_and_averages() {
        let (median, mean) = summarize(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(median, 2.0);
        assert_eq!(mean, 2.0);
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("solve", 64).label, "solve/64");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn bencher_records_batches() {
        let mut b = Bencher {
            per_iter: Vec::new(),
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(b.per_iter.len(), super::BATCHES);
        assert!(b.per_iter.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert!(fmt_ns(5.0).ends_with("ns"));
        assert!(fmt_ns(5_000.0).ends_with("µs"));
        assert!(fmt_ns(5_000_000.0).ends_with("ms"));
    }
}
