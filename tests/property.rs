//! Seeded randomized tests over randomly generated task systems.
//!
//! Strategy: generate arbitrary-but-valid task sets (windows and works in
//! sane ranges) plus platform parameters from a fixed-seed ChaCha8
//! stream, and assert the structural invariants the paper's construction
//! promises:
//!
//! * every heuristic emits a *legal* schedule (validator + simulator),
//! * the final refinement never increases energy,
//! * the convex optimum lower-bounds both heuristics,
//! * Algorithm 1 never self-overlaps a task,
//! * the capped-simplex projection is a true Euclidean projection.

use esched::core::{der_schedule, even_schedule, optimal_energy, pack_subinterval, PackItem};
use esched::opt::{project_capped_simplex, SolveOptions};
use esched::sim::simulate;
use esched::types::{validate_schedule, PolynomialPower, Task, TaskSet};
use esched_obs::rng::ChaCha8;

const CASES: usize = 48;

/// A valid random task: release in [0, 50], window length in (0.5, 40],
/// work sized so intensity stays within (0, 1.5].
fn arb_task(rng: &mut ChaCha8) -> Task {
    let r = rng.gen_range_f64(0.0, 50.0);
    let len = rng.gen_range_f64(0.5, 40.0);
    let intensity = rng.gen_range_f64(0.05, 1.5);
    Task::of(r, r + len, (len * intensity).max(1e-3))
}

fn arb_task_set(rng: &mut ChaCha8, max_tasks: usize) -> TaskSet {
    let n = rng.gen_range_usize(1, max_tasks + 1);
    TaskSet::new((0..n).map(|_| arb_task(rng)).collect()).expect("arb tasks valid")
}

fn arb_power(rng: &mut ChaCha8) -> PolynomialPower {
    PolynomialPower::paper(rng.gen_range_f64(2.0, 3.0), rng.gen_range_f64(0.0, 0.3))
}

#[test]
fn heuristics_always_emit_legal_schedules() {
    let mut rng = ChaCha8::seed_from_u64(0x9209_0001);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 10);
        let power = arb_power(&mut rng);
        let cores = rng.gen_range_usize(1, 5);
        for out in [
            even_schedule(&tasks, cores, &power),
            der_schedule(&tasks, cores, &power),
        ] {
            let report = validate_schedule(&out.schedule, &tasks);
            assert!(report.is_legal(), "{:?}", report.violations);
            let sim = simulate(&out.schedule, &tasks, &power);
            assert!(
                sim.is_clean(),
                "{:?} / misses {:?}",
                sim.conflicts,
                sim.deadline_misses
            );
            // Analytic and simulated energies agree.
            assert!(
                (sim.energy - out.final_energy).abs() < 1e-6 * (1.0 + out.final_energy),
                "sim {} vs analytic {}",
                sim.energy,
                out.final_energy
            );
        }
    }
}

#[test]
fn final_refinement_never_increases_energy() {
    let mut rng = ChaCha8::seed_from_u64(0x9209_0002);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 10);
        let power = arb_power(&mut rng);
        let cores = rng.gen_range_usize(1, 5);
        let even = even_schedule(&tasks, cores, &power);
        let der = der_schedule(&tasks, cores, &power);
        assert!(even.final_energy <= even.intermediate_energy * (1.0 + 1e-9) + 1e-12);
        assert!(der.final_energy <= der.intermediate_energy * (1.0 + 1e-9) + 1e-12);
    }
}

#[test]
fn optimum_lower_bounds_heuristics() {
    let mut rng = ChaCha8::seed_from_u64(0x9209_0003);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 8);
        let power = arb_power(&mut rng);
        let cores = rng.gen_range_usize(1, 4);
        let opt = optimal_energy(&tasks, cores, &power, &SolveOptions::fast());
        let even = even_schedule(&tasks, cores, &power);
        let der = der_schedule(&tasks, cores, &power);
        // Allow the fast solver a small tolerance.
        assert!(
            opt.energy <= even.final_energy * (1.0 + 1e-3) + 1e-9,
            "opt {} vs even {}",
            opt.energy,
            even.final_energy
        );
        assert!(
            opt.energy <= der.final_energy * (1.0 + 1e-3) + 1e-9,
            "opt {} vs der {}",
            opt.energy,
            der.final_energy
        );
    }
}

#[test]
fn packing_never_self_overlaps() {
    let mut rng = ChaCha8::seed_from_u64(0x9209_0004);
    for _ in 0..CASES {
        let n = rng.gen_range_usize(1, 12);
        let durations: Vec<f64> = (0..n).map(|_| rng.gen_range_f64(0.0, 2.0)).collect();
        let cores = rng.gen_range_usize(1, 5);
        // Scale durations so they fit: d_i ≤ Δ and Σd ≤ m·Δ with Δ = 2.
        let delta = 2.0;
        let total: f64 = durations.iter().sum();
        let cap = cores as f64 * delta;
        let scale = if total > cap { cap / total } else { 1.0 };
        let items: Vec<PackItem> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| PackItem {
                task: i,
                duration: d * scale,
                freq: 1.0,
            })
            .collect();
        let mut sched = esched::types::Schedule::new(cores);
        pack_subinterval(&items, 10.0, 12.0, cores, &mut sched).unwrap();
        // No core overlap, no task self-overlap, everything inside [10,12].
        for c in 0..cores {
            let segs = sched.core_segments(c);
            for w in segs.windows(2) {
                assert!(w[0].interval.overlap_len(&w[1].interval) < 1e-9);
            }
        }
        for t in sched.task_ids() {
            let segs = sched.task_segments(t);
            for w in segs.windows(2) {
                assert!(
                    w[0].interval.overlap_len(&w[1].interval) < 1e-9,
                    "task {t} self-overlap"
                );
            }
            // Each task received its full duration.
            let got: f64 = segs.iter().map(|s| s.duration()).sum();
            let want = items[t].duration;
            assert!((got - want).abs() < 1e-9, "task {t}: {got} vs {want}");
        }
        for s in sched.segments() {
            assert!(s.interval.start >= 10.0 - 1e-9 && s.interval.end <= 12.0 + 1e-9);
        }
    }
}

#[test]
fn projection_is_feasible_and_variational() {
    let mut rng = ChaCha8::seed_from_u64(0x9209_0005);
    for _ in 0..CASES {
        let n = rng.gen_range_usize(1, 10);
        let z: Vec<f64> = (0..n).map(|_| rng.gen_range_f64(-2.0, 4.0)).collect();
        let cap_frac = rng.gen_range_f64(0.1, 1.5);
        let u: Vec<f64> = z.iter().map(|_| 1.0).collect();
        let cap = cap_frac * z.len() as f64 * 0.5;
        let mut p = vec![0.0; z.len()];
        project_capped_simplex(&z, &u, cap, &mut p);
        // Feasibility.
        for (&pi, &ui) in p.iter().zip(&u) {
            assert!(pi >= -1e-9 && pi <= ui + 1e-9);
        }
        assert!(p.iter().sum::<f64>() <= cap + 1e-7);
        // Variational inequality against a few deterministic feasible
        // points: ⟨z − p, y − p⟩ ≤ 0.
        let candidates: Vec<Vec<f64>> = vec![
            vec![0.0; z.len()],
            u.iter()
                .map(|&ui| ui * (cap / u.iter().sum::<f64>()).min(1.0))
                .collect(),
        ];
        for y in candidates {
            if y.iter().sum::<f64>() <= cap + 1e-12 {
                let ip: f64 = (0..z.len()).map(|k| (z[k] - p[k]) * (y[k] - p[k])).sum();
                assert!(ip <= 1e-6, "variational inequality violated: {ip}");
            }
        }
    }
}

#[test]
fn work_conservation_every_task_gets_its_requirement() {
    let mut rng = ChaCha8::seed_from_u64(0x9209_0006);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 8);
        let power = arb_power(&mut rng);
        let cores = rng.gen_range_usize(1, 4);
        let out = der_schedule(&tasks, cores, &power);
        for (i, t) in tasks.iter() {
            let got = out.schedule.work_of(i);
            assert!(
                got >= t.wcec * (1.0 - 1e-6) - 1e-9,
                "task {i}: delivered {got} of {}",
                t.wcec
            );
        }
    }
}
