//! Property-based tests over randomly generated task systems.
//!
//! Strategy: generate arbitrary-but-valid task sets (windows and works in
//! sane ranges) plus platform parameters, and assert the structural
//! invariants the paper's construction promises:
//!
//! * every heuristic emits a *legal* schedule (validator + simulator),
//! * the final refinement never increases energy,
//! * the convex optimum lower-bounds both heuristics,
//! * Algorithm 1 never self-overlaps a task,
//! * the capped-simplex projection is a true Euclidean projection.

use esched::core::{der_schedule, even_schedule, optimal_energy, pack_subinterval, PackItem};
use esched::opt::{project_capped_simplex, SolveOptions};
use esched::sim::simulate;
use esched::types::{validate_schedule, PolynomialPower, Task, TaskSet};
use proptest::prelude::*;

/// A valid random task: release in [0, 50], window length in (0.5, 40],
/// work sized so intensity stays within (0, 1.5].
fn arb_task() -> impl Strategy<Value = Task> {
    (0.0_f64..50.0, 0.5_f64..40.0, 0.05_f64..1.5).prop_map(|(r, len, intensity)| {
        Task::of(r, r + len, (len * intensity).max(1e-3))
    })
}

fn arb_task_set(max_tasks: usize) -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(arb_task(), 1..=max_tasks)
        .prop_map(|v| TaskSet::new(v).expect("arb tasks valid"))
}

fn arb_power() -> impl Strategy<Value = PolynomialPower> {
    (2.0_f64..3.0, 0.0_f64..0.3).prop_map(|(alpha, p0)| PolynomialPower::paper(alpha, p0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn heuristics_always_emit_legal_schedules(
        tasks in arb_task_set(10),
        power in arb_power(),
        cores in 1_usize..5,
    ) {
        for out in [
            even_schedule(&tasks, cores, &power),
            der_schedule(&tasks, cores, &power),
        ] {
            let report = validate_schedule(&out.schedule, &tasks);
            prop_assert!(report.is_legal(), "{:?}", report.violations);
            let sim = simulate(&out.schedule, &tasks, &power);
            prop_assert!(sim.is_clean(), "{:?} / misses {:?}", sim.conflicts, sim.deadline_misses);
            // Analytic and simulated energies agree.
            prop_assert!(
                (sim.energy - out.final_energy).abs() < 1e-6 * (1.0 + out.final_energy),
                "sim {} vs analytic {}", sim.energy, out.final_energy
            );
        }
    }

    #[test]
    fn final_refinement_never_increases_energy(
        tasks in arb_task_set(10),
        power in arb_power(),
        cores in 1_usize..5,
    ) {
        let even = even_schedule(&tasks, cores, &power);
        let der = der_schedule(&tasks, cores, &power);
        prop_assert!(even.final_energy <= even.intermediate_energy * (1.0 + 1e-9) + 1e-12);
        prop_assert!(der.final_energy <= der.intermediate_energy * (1.0 + 1e-9) + 1e-12);
    }

    #[test]
    fn optimum_lower_bounds_heuristics(
        tasks in arb_task_set(8),
        power in arb_power(),
        cores in 1_usize..4,
    ) {
        let opt = optimal_energy(&tasks, cores, &power, &SolveOptions::fast());
        let even = even_schedule(&tasks, cores, &power);
        let der = der_schedule(&tasks, cores, &power);
        // Allow the fast solver a small tolerance.
        prop_assert!(opt.energy <= even.final_energy * (1.0 + 1e-3) + 1e-9,
            "opt {} vs even {}", opt.energy, even.final_energy);
        prop_assert!(opt.energy <= der.final_energy * (1.0 + 1e-3) + 1e-9,
            "opt {} vs der {}", opt.energy, der.final_energy);
    }

    #[test]
    fn packing_never_self_overlaps(
        durations in prop::collection::vec(0.0_f64..2.0, 1..12),
        cores in 1_usize..5,
    ) {
        // Scale durations so they fit: d_i ≤ Δ and Σd ≤ m·Δ with Δ = 2.
        let delta = 2.0;
        let total: f64 = durations.iter().sum();
        let cap = cores as f64 * delta;
        let scale = if total > cap { cap / total } else { 1.0 };
        let items: Vec<PackItem> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| PackItem { task: i, duration: d * scale, freq: 1.0 })
            .collect();
        let mut sched = esched::types::Schedule::new(cores);
        pack_subinterval(&items, 10.0, 12.0, cores, &mut sched).unwrap();
        // No core overlap, no task self-overlap, everything inside [10,12].
        for c in 0..cores {
            let segs = sched.core_segments(c);
            for w in segs.windows(2) {
                prop_assert!(w[0].interval.overlap_len(&w[1].interval) < 1e-9);
            }
        }
        for t in sched.task_ids() {
            let segs = sched.task_segments(t);
            for w in segs.windows(2) {
                prop_assert!(w[0].interval.overlap_len(&w[1].interval) < 1e-9,
                    "task {t} self-overlap");
            }
            // Each task received its full duration.
            let got: f64 = segs.iter().map(|s| s.duration()).sum();
            let want = items[t].duration;
            prop_assert!((got - want).abs() < 1e-9, "task {t}: {got} vs {want}");
        }
        for s in sched.segments() {
            prop_assert!(s.interval.start >= 10.0 - 1e-9 && s.interval.end <= 12.0 + 1e-9);
        }
    }

    #[test]
    fn projection_is_feasible_and_variational(
        z in prop::collection::vec(-2.0_f64..4.0, 1..10),
        cap_frac in 0.1_f64..1.5,
    ) {
        let u: Vec<f64> = z.iter().map(|_| 1.0).collect();
        let cap = cap_frac * z.len() as f64 * 0.5;
        let mut p = vec![0.0; z.len()];
        project_capped_simplex(&z, &u, cap, &mut p);
        // Feasibility.
        for (&pi, &ui) in p.iter().zip(&u) {
            prop_assert!(pi >= -1e-9 && pi <= ui + 1e-9);
        }
        prop_assert!(p.iter().sum::<f64>() <= cap + 1e-7);
        // Variational inequality against a few deterministic feasible
        // points: ⟨z − p, y − p⟩ ≤ 0.
        let candidates: Vec<Vec<f64>> = vec![
            vec![0.0; z.len()],
            u.iter().map(|&ui| ui * (cap / u.iter().sum::<f64>()).min(1.0)).collect(),
        ];
        for y in candidates {
            if y.iter().sum::<f64>() <= cap + 1e-12 {
                let ip: f64 = (0..z.len()).map(|k| (z[k] - p[k]) * (y[k] - p[k])).sum();
                prop_assert!(ip <= 1e-6, "variational inequality violated: {ip}");
            }
        }
    }

    #[test]
    fn work_conservation_every_task_gets_its_requirement(
        tasks in arb_task_set(8),
        power in arb_power(),
        cores in 1_usize..4,
    ) {
        let out = der_schedule(&tasks, cores, &power);
        for (i, t) in tasks.iter() {
            let got = out.schedule.work_of(i);
            prop_assert!(got >= t.wcec * (1.0 - 1e-6) - 1e-9,
                "task {i}: delivered {got} of {}", t.wcec);
        }
    }
}
