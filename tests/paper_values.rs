//! Golden tests: every concrete number the paper's text reports,
//! reproduced end-to-end through the public API.

use esched::core::{der_schedule, even_schedule, ideal_schedule, optimal_energy, yds_schedule};
use esched::opt::SolveOptions;
use esched::subinterval::Timeline;
use esched::types::PolynomialPower;
use esched::workload::{intro_three_tasks, section_vd_six_tasks, xscale_fitted, xscale_paper_fit};

/// Section I.B: YDS picks [4,8] at f=1, then [0,8] at f=0.75.
#[test]
fn yds_intro_speeds() {
    let yds = yds_schedule(&intro_three_tasks(), &PolynomialPower::cubic());
    assert!((yds.speed[2] - 1.0).abs() < 1e-9);
    assert!((yds.speed[0] - 0.75).abs() < 1e-9);
    assert!((yds.speed[1] - 0.75).abs() < 1e-9);
}

/// Section II: two cores, p(f) = f³ + 0.01 — optimal x = (8/3, 4/3, 4),
/// y = (8, 4), dynamic energy 155/32.
#[test]
fn section_ii_two_core_optimum() {
    let opt = optimal_energy(
        &intro_three_tasks(),
        2,
        &PolynomialPower::paper(3.0, 0.01),
        &SolveOptions::precise(),
    );
    assert!((opt.energy - (155.0 / 32.0 + 0.2)).abs() < 1e-5);
    assert!((opt.total_times[0] - 32.0 / 3.0).abs() < 1e-3);
    assert!((opt.total_times[1] - 16.0 / 3.0).abs() < 1e-3);
    assert!((opt.total_times[2] - 4.0).abs() < 1e-3);
}

/// Section V.D: ideal frequencies 4/5, 7/8, 2/3, 1/2, 5/6, 3/5.
#[test]
fn vd_ideal_frequencies() {
    let sol = ideal_schedule(&section_vd_six_tasks(), &PolynomialPower::cubic());
    let expect = [0.8, 0.875, 2.0 / 3.0, 0.5, 5.0 / 6.0, 0.6];
    for (i, &e) in expect.iter().enumerate() {
        assert!((sol.freq[i] - e).abs() < 1e-12, "task {i}");
    }
}

/// Section V.D: heavy subintervals are exactly [8,10] and [12,14] on a
/// quad-core.
#[test]
fn vd_heavy_subintervals() {
    let tl = Timeline::build(&section_vd_six_tasks());
    let heavy = tl.heavy_indices(4);
    let spans: Vec<(f64, f64)> = heavy
        .iter()
        .map(|&j| (tl.get(j).interval.start, tl.get(j).interval.end))
        .collect();
    assert_eq!(spans, vec![(8.0, 10.0), (12.0, 14.0)]);
}

/// Section V.D final energies: E^F1 = 33.0642, E^F2 = 31.8362.
#[test]
fn vd_final_energies() {
    let tasks = section_vd_six_tasks();
    let p = PolynomialPower::cubic();
    let even = even_schedule(&tasks, 4, &p);
    let der = der_schedule(&tasks, 4, &p);
    assert!(
        (even.final_energy - 33.0642).abs() < 5e-4,
        "{}",
        even.final_energy
    );
    assert!(
        (der.final_energy - 31.8362).abs() < 5e-4,
        "{}",
        der.final_energy
    );
}

/// Section V.D: the even method's final frequency denominators
/// (8 + 8/5, 12 + 16/5, 8 + 16/5, 4 + 16/5, 8 + 16/5, 8 + 8/5).
#[test]
fn vd_even_final_frequencies() {
    let tasks = section_vd_six_tasks();
    let even = even_schedule(&tasks, 4, &PolynomialPower::cubic());
    let expect = [
        8.0 / (8.0 + 1.6),
        14.0 / (12.0 + 3.2),
        8.0 / (8.0 + 3.2),
        4.0 / (4.0 + 3.2),
        10.0 / (8.0 + 3.2),
        6.0 / (8.0 + 1.6),
    ];
    for (i, &e) in expect.iter().enumerate() {
        assert!((even.assignment.freq[i] - e).abs() < 1e-9, "task {i}");
    }
}

/// Section VI.C: our least-squares fit of the XScale table lands near the
/// paper's γ = 3.855e-6, α = 2.867, p₀ = 63.58.
#[test]
fn xscale_fit_neighbourhood() {
    let ours = xscale_fitted();
    let paper = xscale_paper_fit();
    assert!((ours.alpha - paper.alpha).abs() < 0.4);
    use esched::types::PowerModel;
    // Both predict the measured top-level power within 15%.
    assert!((ours.power(1000.0) - 1600.0).abs() / 1600.0 < 0.15);
    assert!((paper.power(1000.0) - 1600.0).abs() / 1600.0 < 0.15);
}

/// Fig. 3's lesson: with p(f) = f² + 0.25, using 4 of 5 available time
/// units (f = 0.5) beats the full stretch (f = 0.4) — energies 2.00 vs
/// 2.05.
#[test]
fn fig3_partial_time_usage() {
    let p = PolynomialPower::paper(2.0, 0.25);
    assert!((p.optimal_energy(2.0, 5.0) - 2.0).abs() < 1e-12);
    use esched::types::PowerModel;
    assert!((p.energy_for_work(2.0, 0.4) - 2.05).abs() < 1e-12);
}
