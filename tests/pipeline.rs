//! End-to-end pipeline tests: generator → timeline → heuristics/optimum →
//! validation → simulation, across random instances and power models.

use esched::core::{der_schedule, even_schedule, ideal_schedule, optimal_energy, yds_schedule};
use esched::opt::SolveOptions;
use esched::sim::simulate;
use esched::types::{validate_schedule, PolynomialPower, TaskSet};
use esched::workload::{GeneratorConfig, WorkloadGenerator};

fn random_sets(n_sets: usize, tasks: usize, seed: u64) -> Vec<TaskSet> {
    WorkloadGenerator::new(GeneratorConfig::paper_default().with_tasks(tasks), seed)
        .generate_many(n_sets)
}

#[test]
fn heuristic_schedules_are_legal_and_simulate_cleanly() {
    let powers = [
        PolynomialPower::cubic(),
        PolynomialPower::paper(2.0, 0.0),
        PolynomialPower::paper(3.0, 0.2),
        PolynomialPower::paper(2.5, 0.05),
    ];
    for (k, tasks) in random_sets(6, 12, 100).into_iter().enumerate() {
        let power = powers[k % powers.len()];
        for cores in [2usize, 4] {
            for out in [
                even_schedule(&tasks, cores, &power),
                der_schedule(&tasks, cores, &power),
            ] {
                validate_schedule(&out.schedule, &tasks).assert_legal();
                validate_schedule(&out.intermediate_schedule, &tasks).assert_legal();
                let sim = simulate(&out.schedule, &tasks, &power);
                assert!(sim.is_clean(), "set {k} cores {cores}: {:?}", sim.conflicts);
                // Simulated energy equals analytic final energy.
                assert!(
                    (sim.energy - out.final_energy).abs() < 1e-6 * (1.0 + out.final_energy),
                    "set {k}: sim {} vs analytic {}",
                    sim.energy,
                    out.final_energy
                );
            }
        }
    }
}

#[test]
fn optimal_schedules_are_legal_and_beat_heuristics() {
    for (k, tasks) in random_sets(4, 10, 777).into_iter().enumerate() {
        let power = PolynomialPower::paper(3.0, 0.1);
        let cores = 4;
        let opt = optimal_energy(&tasks, cores, &power, &SolveOptions::fast());
        validate_schedule(&opt.schedule, &tasks).assert_legal();
        let der = der_schedule(&tasks, cores, &power);
        let even = even_schedule(&tasks, cores, &power);
        assert!(
            opt.energy <= der.final_energy * (1.0 + 1e-4),
            "set {k}: opt {} > der {}",
            opt.energy,
            der.final_energy
        );
        assert!(
            opt.energy <= even.final_energy * (1.0 + 1e-4),
            "set {k}: opt {} > even {}",
            opt.energy,
            even.final_energy
        );
    }
}

#[test]
fn ideal_lower_bounds_optimum_when_static_power_is_zero() {
    for tasks in random_sets(4, 10, 4242) {
        let power = PolynomialPower::cubic();
        let ideal = ideal_schedule(&tasks, &power);
        let opt = optimal_energy(&tasks, 4, &power, &SolveOptions::fast());
        assert!(
            ideal.energy <= opt.energy * (1.0 + 1e-6),
            "ideal {} > opt {}",
            ideal.energy,
            opt.energy
        );
    }
}

#[test]
fn yds_schedules_random_instances_legally() {
    for tasks in random_sets(6, 8, 31415) {
        let power = PolynomialPower::cubic();
        let yds = yds_schedule(&tasks, &power);
        validate_schedule(&yds.schedule, &tasks).assert_legal();
        let sim = simulate(&yds.schedule, &tasks, &power);
        assert!(sim.is_clean());
        // YDS is optimal on a uniprocessor with zero static power.
        let opt = optimal_energy(&tasks, 1, &power, &SolveOptions::default());
        assert!(
            (yds.energy - opt.energy).abs() < 5e-3 * (1.0 + opt.energy),
            "yds {} vs opt {}",
            yds.energy,
            opt.energy
        );
    }
}

#[test]
fn final_never_worse_than_intermediate_across_random_instances() {
    for tasks in random_sets(8, 15, 2718) {
        for p0 in [0.0, 0.1, 0.3] {
            let power = PolynomialPower::paper(3.0, p0);
            let even = even_schedule(&tasks, 4, &power);
            let der = der_schedule(&tasks, 4, &power);
            assert!(even.final_energy <= even.intermediate_energy * (1.0 + 1e-9));
            assert!(der.final_energy <= der.intermediate_energy * (1.0 + 1e-9));
        }
    }
}

#[test]
fn more_cores_never_hurt_the_optimum() {
    let tasks = random_sets(1, 14, 555).pop().unwrap();
    let power = PolynomialPower::paper(3.0, 0.05);
    let mut last = f64::INFINITY;
    for m in [1usize, 2, 4, 8] {
        let opt = optimal_energy(&tasks, m, &power, &SolveOptions::fast());
        assert!(
            opt.energy <= last * (1.0 + 1e-4),
            "m={m}: {} > {last}",
            opt.energy
        );
        last = opt.energy;
    }
}
