//! The classical special cases through the aperiodic pipeline: periodic
//! and frame-based systems expanded into jobs, scheduled, validated, and
//! sanity-checked against known structure.

use esched::core::{der_schedule, even_schedule, optimal_energy, yds_schedule};
use esched::opt::SolveOptions;
use esched::sim::simulate;
use esched::subinterval::Timeline;
use esched::types::{validate_schedule, PolynomialPower};
use esched::workload::{expand_periodic, frame_based, hyperperiod, PeriodicTask};

#[test]
fn implicit_deadline_system_schedules_over_its_hyperperiod() {
    let system = [
        PeriodicTask::new(4.0, 1.0),
        PeriodicTask::new(6.0, 2.0),
        PeriodicTask::new(12.0, 4.0),
    ];
    let h = hyperperiod(&system, 1.0).unwrap();
    assert_eq!(h, 12.0);
    let jobs = expand_periodic(&system, h);
    // 3 + 2 + 1 jobs.
    assert_eq!(jobs.len(), 6);
    let p = PolynomialPower::paper(3.0, 0.05);
    for cores in [1usize, 2] {
        let out = der_schedule(&jobs, cores, &p);
        validate_schedule(&out.schedule, &jobs).assert_legal();
        assert!(simulate(&out.schedule, &jobs, &p).is_clean());
    }
}

#[test]
fn frame_based_is_one_heavy_subinterval_per_frame() {
    // k jobs per frame on fewer cores: every frame is a heavy subinterval
    // and nothing else exists.
    let jobs = frame_based(&[1.0, 1.5, 2.0, 0.5, 1.0], 4.0, 3);
    let tl = Timeline::build(&jobs);
    assert_eq!(tl.len(), 3);
    assert_eq!(tl.heavy_indices(2), vec![0, 1, 2]);
    // All five jobs of a frame overlap exactly their frame.
    for sub in tl.subintervals() {
        assert_eq!(sub.overlap_count(), 5);
    }
}

#[test]
fn frame_based_even_equals_der_under_symmetric_work() {
    // Identical works in every frame: DER weights are equal, so the two
    // allocation rules coincide.
    let jobs = frame_based(&[2.0, 2.0, 2.0], 4.0, 2);
    let p = PolynomialPower::cubic();
    let even = even_schedule(&jobs, 2, &p);
    let der = der_schedule(&jobs, 2, &p);
    assert!(
        (even.final_energy - der.final_energy).abs() < 1e-9,
        "even {} vs der {}",
        even.final_energy,
        der.final_energy
    );
}

#[test]
fn single_periodic_task_on_one_core_matches_yds() {
    // One implicit-deadline periodic task: each job runs at its intensity;
    // YDS and DER agree with the closed form C/T per job.
    let system = [PeriodicTask::new(5.0, 2.0)];
    let jobs = expand_periodic(&system, 15.0);
    let p = PolynomialPower::cubic();
    let yds = yds_schedule(&jobs, &p);
    let der = der_schedule(&jobs, 1, &p);
    let expect = 3.0 * p_energy(2.0, 0.4); // 3 jobs at f = 0.4
    assert!((yds.energy - expect).abs() < 1e-9, "yds {}", yds.energy);
    assert!(
        (der.final_energy - expect).abs() < 1e-9,
        "der {}",
        der.final_energy
    );

    fn p_energy(work: f64, f: f64) -> f64 {
        f.powi(3) * work / f
    }
}

#[test]
fn periodic_optimum_is_periodic_per_job() {
    // With p0 = 0 and one job class, the optimum gives every job the same
    // total time (symmetry), hence the same frequency.
    let system = [PeriodicTask::new(4.0, 1.5), PeriodicTask::new(4.0, 1.5)];
    let jobs = expand_periodic(&system, 8.0); // 4 identical-shape jobs
    let p = PolynomialPower::cubic();
    let sol = optimal_energy(&jobs, 2, &p, &SolveOptions::precise());
    let f0 = sol.freq[0];
    for (i, &f) in sol.freq.iter().enumerate() {
        assert!((f - f0).abs() < 1e-4, "job {i}: {f} vs {f0}");
    }
    validate_schedule(&sol.schedule, &jobs).assert_legal();
}
