//! Integration tests for the baseline schedulers and the online
//! dispatchers, across random instances.

use esched::core::{der_schedule, optimal_energy, partitioned_yds, uniform_frequency};
use esched::opt::SolveOptions;
use esched::sim::{dispatch, simulate, DispatchPolicy};
use esched::subinterval::Timeline;
use esched::types::{validate_schedule, PolynomialPower, TaskSet};
use esched::workload::{GeneratorConfig, WorkloadGenerator};

fn random_sets(n_sets: usize, tasks: usize, seed: u64) -> Vec<TaskSet> {
    WorkloadGenerator::new(GeneratorConfig::paper_default().with_tasks(tasks), seed)
        .generate_many(n_sets)
}

#[test]
fn partitioned_yds_legal_and_bounded_by_optimum() {
    let power = PolynomialPower::cubic();
    for (k, tasks) in random_sets(5, 12, 808).into_iter().enumerate() {
        let out = partitioned_yds(&tasks, 4, &power);
        validate_schedule(&out.schedule, &tasks).assert_legal();
        let sim = simulate(&out.schedule, &tasks, &power);
        assert!(sim.is_clean(), "set {k}: {:?}", sim.conflicts);
        let opt = optimal_energy(&tasks, 4, &power, &SolveOptions::fast());
        assert!(
            opt.energy <= out.energy * (1.0 + 1e-4),
            "set {k}: optimum {} above partitioned {}",
            opt.energy,
            out.energy
        );
        // Simulated energy equals the analytic sum of per-core YDS runs.
        assert!(
            (sim.energy - out.energy).abs() < 1e-6 * (1.0 + out.energy),
            "set {k}: sim {} vs analytic {}",
            sim.energy,
            out.energy
        );
    }
}

#[test]
fn uniform_frequency_legal_and_dominated() {
    let power = PolynomialPower::paper(3.0, 0.05);
    for (k, tasks) in random_sets(5, 10, 909).into_iter().enumerate() {
        let uni = uniform_frequency(&tasks, 4, &power);
        validate_schedule(&uni.schedule, &tasks).assert_legal();
        let der = der_schedule(&tasks, 4, &power);
        assert!(
            der.final_energy <= uni.energy * (1.0 + 1e-6),
            "set {k}: der {} above uniform {}",
            der.final_energy,
            uni.energy
        );
    }
}

#[test]
fn online_dispatch_never_overruns_windows_or_cores() {
    // Even when greedy dispatch misses deadlines, the schedule it emits
    // must be physically sane: no core overlap, no self-overlap, no
    // execution outside windows.
    let power = PolynomialPower::paper(3.0, 0.1);
    for tasks in random_sets(6, 14, 606) {
        let der = der_schedule(&tasks, 4, &power);
        let epochs = Timeline::build(&tasks).boundaries().to_vec();
        for policy in [DispatchPolicy::Edf, DispatchPolicy::Llf] {
            let out = dispatch(&tasks, 4, &der.assignment.freq, policy, &epochs);
            let report = validate_schedule(&out.schedule, &tasks);
            for v in &report.violations {
                assert!(
                    matches!(v, esched::types::Violation::Underserved { .. }),
                    "{policy:?}: physical violation {v:?}"
                );
            }
            // Underserved tasks are exactly the reported misses.
            let underserved: Vec<usize> = report
                .violations
                .iter()
                .filter_map(|v| match v {
                    esched::types::Violation::Underserved { task, .. } => Some(*task),
                    _ => None,
                })
                .collect();
            for t in &underserved {
                assert!(
                    out.misses.contains(t),
                    "{policy:?}: task {t} underserved but not reported missed"
                );
            }
        }
    }
}

#[test]
fn online_dispatch_with_generous_frequencies_always_succeeds() {
    // Give every task its full-window stretch frequency times two: the
    // slack is enormous and both policies must meet every deadline.
    let power = PolynomialPower::cubic();
    for tasks in random_sets(4, 8, 1001) {
        let freqs: Vec<f64> = tasks
            .tasks()
            .iter()
            .map(|t| 2.0 * t.intensity().max(0.05))
            .collect();
        for policy in [DispatchPolicy::Edf, DispatchPolicy::Llf] {
            let out = dispatch(&tasks, 4, &freqs, policy, &[]);
            assert!(
                out.misses.is_empty(),
                "{policy:?} missed with 2x frequencies: {:?}",
                out.misses
            );
            validate_schedule(&out.schedule, &tasks).assert_legal();
        }
        let _ = power.p0;
    }
}

#[test]
fn baseline_ordering_holds_on_average() {
    // Over a handful of instances: optimal ≤ der ≤ partitioned-YDS and
    // optimal ≤ der ≤ uniform (averages — individual instances may flip
    // the baselines among themselves).
    let power = PolynomialPower::cubic();
    let sets = random_sets(6, 12, 2020);
    let mut sum_der = 0.0;
    let mut sum_part = 0.0;
    let mut sum_uni = 0.0;
    for tasks in &sets {
        let opt = optimal_energy(tasks, 4, &power, &SolveOptions::fast()).energy;
        sum_der += der_schedule(tasks, 4, &power).final_energy / opt;
        sum_part += partitioned_yds(tasks, 4, &power).energy / opt;
        sum_uni += uniform_frequency(tasks, 4, &power).energy / opt;
    }
    assert!(
        sum_der <= sum_part,
        "der {sum_der} vs partitioned {sum_part}"
    );
    assert!(sum_der <= sum_uni, "der {sum_der} vs uniform {sum_uni}");
    assert!(sum_der / sets.len() as f64 >= 0.999);
}
