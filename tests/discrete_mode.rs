//! Integration tests for the practical discrete-frequency mode
//! (Section VI.C) across the whole pipeline: generator → continuous
//! schedule under the fitted XScale model → quantization → energy and
//! deadline-miss accounting.

use esched::core::{
    der_schedule, even_schedule, optimal_energy, quantize_schedule, QuantizePolicy,
};
use esched::opt::SolveOptions;
use esched::types::{validate_schedule, PowerModel, TaskSet};
use esched::workload::{
    xscale_discrete, xscale_fitted, xscale_paper_fit, GeneratorConfig, WorkloadGenerator,
};

fn xscale_sets(n_sets: usize, seed: u64) -> Vec<TaskSet> {
    WorkloadGenerator::new(GeneratorConfig::xscale_default(), seed).generate_many(n_sets)
}

#[test]
fn quantization_energy_is_finite_and_ordered() {
    let power = xscale_paper_fit();
    let table = xscale_discrete();
    for tasks in xscale_sets(4, 42) {
        let der = der_schedule(&tasks, 4, &power);
        validate_schedule(&der.schedule, &tasks).assert_legal();
        let nu = quantize_schedule(&der.schedule, &table, QuantizePolicy::NextUp);
        let be = quantize_schedule(&der.schedule, &table, QuantizePolicy::BestEfficiency);
        assert!(nu.energy.is_finite() && nu.energy > 0.0);
        // Best-efficiency never loses to next-up.
        assert!(be.energy <= nu.energy * (1.0 + 1e-12));
        // Quantizing up wastes some energy vs the continuous schedule…
        let cont = der.schedule.energy(&power);
        assert!(
            nu.energy >= cont * 0.8,
            "nu {} vs continuous {cont}",
            nu.energy
        );
    }
}

#[test]
fn quantized_f2_stays_near_continuous_optimum() {
    let power = xscale_paper_fit();
    let table = xscale_discrete();
    for tasks in xscale_sets(4, 77) {
        let opt = optimal_energy(&tasks, 4, &power, &SolveOptions::fast());
        let der = der_schedule(&tasks, 4, &power);
        let q = quantize_schedule(&der.schedule, &table, QuantizePolicy::NextUp);
        let nec = q.energy / opt.energy;
        assert!(
            nec < 1.6,
            "quantized F2 NEC {nec} too far from continuous optimum"
        );
        assert!(q.feasible, "F2 missed deadlines: {:?}", q.misses);
    }
}

#[test]
fn intermediate_schedules_miss_more_than_finals() {
    // Over several instances, count misses: I1 ≥ F1 and I2 ≥ F2 in
    // aggregate (the squeezed intermediate frequencies are the risky
    // ones).
    let power = xscale_paper_fit();
    let table = xscale_discrete();
    let mut misses = [0usize; 4]; // i1, f1, i2, f2
    for tasks in xscale_sets(20, 1234) {
        let even = even_schedule(&tasks, 4, &power);
        let der = der_schedule(&tasks, 4, &power);
        let q = |s: &esched::types::Schedule| {
            !quantize_schedule(s, &table, QuantizePolicy::NextUp).feasible as usize
        };
        misses[0] += q(&even.intermediate_schedule);
        misses[1] += q(&even.schedule);
        misses[2] += q(&der.intermediate_schedule);
        misses[3] += q(&der.schedule);
    }
    assert!(
        misses[0] >= misses[1],
        "I1 {} vs F1 {}",
        misses[0],
        misses[1]
    );
    assert!(
        misses[2] >= misses[3],
        "I2 {} vs F2 {}",
        misses[2],
        misses[3]
    );
    assert_eq!(misses[3], 0, "F2 should never miss on this distribution");
}

#[test]
fn our_fit_and_paper_fit_agree_on_schedules() {
    // Scheduling under our own fitted model vs the paper's reported fit
    // should produce energies within a few percent (both are fits of the
    // same five points).
    let ours = xscale_fitted();
    let paper = xscale_paper_fit();
    for tasks in xscale_sets(3, 5) {
        let a = der_schedule(&tasks, 4, &ours).final_energy;
        let b = der_schedule(&tasks, 4, &paper).final_energy;
        assert!(
            (a - b).abs() / b < 0.20,
            "fit disagreement: ours {a} vs paper {b}"
        );
    }
}

#[test]
fn critical_frequency_matches_energy_per_work_minimum_on_fitted_model() {
    let m = xscale_paper_fit();
    let fc = m.critical_frequency();
    // Scan a grid: no frequency beats f_crit on energy-per-work.
    let best = m.energy_per_work(fc);
    for k in 1..=100 {
        let f = 10.0 * k as f64;
        assert!(m.energy_per_work(f) >= best - 1e-9, "f = {f}");
    }
    // And it lies strictly inside the XScale range.
    assert!(fc > 150.0 && fc < 1000.0, "f_crit = {fc}");
}
