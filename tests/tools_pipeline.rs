//! Integration tests for the tooling surface: quality analysis, task-set
//! transforms, SVG export, traced simulation, and two-level quantization —
//! all through the umbrella public API.

use esched::core::{analyze, best_discrete_split, der_schedule, two_level_split};
use esched::sim::{log_to_csv, render_svg, simulate_traced, SvgOptions};
use esched::types::{
    normalize_origin, rescale_time, rescale_work, validate_schedule, PolynomialPower,
};
use esched::workload::{section_vd_six_tasks, xscale_discrete, GeneratorConfig, WorkloadGenerator};

#[test]
fn quality_report_round_trips_through_the_public_api() {
    let tasks = section_vd_six_tasks();
    let p = PolynomialPower::paper(3.0, 0.1);
    let out = der_schedule(&tasks, 4, &p);
    let q = analyze(&out.schedule, &tasks, &p);
    assert_eq!(q.tasks.len(), 6);
    assert!((q.energy - out.schedule.energy(&p)).abs() < 1e-7 * (1.0 + q.energy));
    assert!(q.utilization > 0.0 && q.utilization <= 1.0 + 1e-9);
    let text = q.render();
    assert!(text.contains("total: E ="));
}

#[test]
fn scaling_a_task_set_scales_schedule_energy_predictably() {
    // rescale_time by k: frequencies unchanged, durations ×k → energy ×k.
    let tasks = section_vd_six_tasks();
    let p = PolynomialPower::cubic();
    let base = der_schedule(&tasks, 4, &p).final_energy;
    let scaled = rescale_time(&tasks, 2.0);
    let e2 = der_schedule(&scaled, 4, &p).final_energy;
    assert!(
        (e2 - 2.0 * base).abs() < 1e-6 * (1.0 + base),
        "{e2} vs {}",
        2.0 * base
    );

    // rescale_work by k with p = f^3: frequencies ×k, energy ×k³.
    let scaled_w = rescale_work(&tasks, 2.0);
    let e3 = der_schedule(&scaled_w, 4, &p).final_energy;
    assert!(
        (e3 - 8.0 * base).abs() < 1e-6 * (1.0 + 8.0 * base),
        "{e3} vs {}",
        8.0 * base
    );
}

#[test]
fn normalized_sets_schedule_identically() {
    let mut gen = WorkloadGenerator::new(GeneratorConfig::paper_default().with_tasks(10), 55);
    let tasks = gen.generate();
    let p = PolynomialPower::paper(3.0, 0.1);
    let base = der_schedule(&tasks, 4, &p).final_energy;
    let norm = normalize_origin(&tasks);
    let e = der_schedule(&norm, 4, &p).final_energy;
    assert!((e - base).abs() < 1e-9 * (1.0 + base));
}

#[test]
fn svg_export_of_a_real_schedule() {
    let tasks = section_vd_six_tasks();
    let p = PolynomialPower::cubic();
    let out = der_schedule(&tasks, 4, &p);
    let svg = render_svg(&out.schedule, 0.0, 22.0, &SvgOptions::default());
    assert!(svg.starts_with("<svg"));
    // One rect per segment + 4 row backgrounds + 1 canvas.
    assert_eq!(
        svg.matches("<rect").count(),
        out.schedule.len() + 4 + 1,
        "unexpected rect count"
    );
}

#[test]
fn traced_simulation_logs_complete_lifecycles() {
    let tasks = section_vd_six_tasks();
    let p = PolynomialPower::cubic();
    let out = der_schedule(&tasks, 4, &p);
    let (report, log) = simulate_traced(&out.schedule, &tasks, &p);
    assert!(report.is_clean());
    // Every task has exactly one release and one deadline event and at
    // least one start.
    for i in 0..6 {
        let releases = log
            .iter()
            .filter(|e| e.kind == "release" && e.task == i)
            .count();
        let deadlines = log
            .iter()
            .filter(|e| e.kind == "deadline" && e.task == i)
            .count();
        let starts = log
            .iter()
            .filter(|e| e.kind == "start" && e.task == i)
            .count();
        assert_eq!(releases, 1, "task {i}");
        assert_eq!(deadlines, 1, "task {i}");
        assert!(starts >= 1, "task {i}");
    }
    // Starts and ends balance.
    let starts = log.iter().filter(|e| e.kind == "start").count();
    let ends = log.iter().filter(|e| e.kind == "end").count();
    assert_eq!(starts, ends);
    let csv = log_to_csv(&log);
    assert_eq!(csv.lines().count(), log.len() + 1);
}

#[test]
fn best_discrete_execution_beats_next_up_on_the_f2_assignment() {
    // On the XScale table, the per-task optimal discrete execution
    // (best single level vs. bracketing two-level mix — see the caveat on
    // `two_level_split`) never costs more than naive next-level-up
    // rounding.
    let mut gen = WorkloadGenerator::new(GeneratorConfig::xscale_default(), 9);
    let tasks = gen.generate();
    let power = esched::workload::xscale_paper_fit();
    let table = xscale_discrete();
    let out = der_schedule(&tasks, 4, &power);
    validate_schedule(&out.schedule, &tasks).assert_legal();
    let works: Vec<f64> = tasks.tasks().iter().map(|t| t.wcec).collect();

    let mut best_total = 0.0;
    for (i, &c) in works.iter().enumerate() {
        let avail = c / out.assignment.freq[i];
        let best = best_discrete_split(&table, c, avail).expect("feasible");
        best_total += best.energy;
        // The raw two-level split conserves work exactly.
        let split = two_level_split(&table, c, avail).unwrap();
        let w = split.low.freq * split.t_low + split.high.freq * split.t_high;
        assert!((w - c).abs() < 1e-6 * (1.0 + c), "task {i}");
        // best is the min of the two strategies.
        assert!(best.energy <= split.energy * (1.0 + 1e-12));
    }
    let nu = esched::core::quantize_schedule(
        &out.schedule,
        &table,
        esched::core::QuantizePolicy::NextUp,
    );
    assert!(
        best_total <= nu.energy * (1.0 + 1e-9),
        "best discrete {} vs next-up {}",
        best_total,
        nu.energy
    );
}
