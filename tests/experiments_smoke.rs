//! Smoke tests for the experiment harness: every figure/table module runs
//! end-to-end at a reduced trial count and produces sane output and
//! artifacts.

use esched_experiments::{ablate, fig10, fig11, fig6, fig7, fig8, fig9, solvers, table2, worked};
use std::fs;

fn outdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("esched-smoke-{name}"));
    fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn fig6_report_and_csv() {
    let dir = outdir("fig6");
    let report = fig6::run_and_report(2, 1, &dir);
    assert!(report.contains("Figure 6"));
    assert!(report.lines().count() >= 13); // header + 11 rows
    let csv = fs::read_to_string(dir.join("fig6.csv")).unwrap();
    assert!(csv.starts_with("p0,nec_idl"));
    assert_eq!(csv.lines().count(), 12);
}

#[test]
fn fig7_report_and_csv() {
    let dir = outdir("fig7");
    let report = fig7::run_and_report(2, 1, &dir);
    assert!(report.contains("Figure 7"));
    assert!(fs::metadata(dir.join("fig7.csv")).unwrap().len() > 0);
}

#[test]
fn fig8_report_and_csv() {
    let dir = outdir("fig8");
    let report = fig8::run_and_report(2, 1, &dir);
    assert!(report.contains("Figure 8"));
    let csv = fs::read_to_string(dir.join("fig8.csv")).unwrap();
    assert_eq!(csv.lines().count(), 7); // header + 6 core counts
}

#[test]
fn fig9_report_and_csv() {
    let dir = outdir("fig9");
    let report = fig9::run_and_report(2, 1, &dir);
    assert!(report.contains("Figure 9"));
    assert!(fs::metadata(dir.join("fig9.csv")).unwrap().len() > 0);
}

#[test]
fn fig10_report_and_csv() {
    let dir = outdir("fig10");
    let report = fig10::run_and_report(2, 1, &dir);
    assert!(report.contains("Figure 10"));
    let csv = fs::read_to_string(dir.join("fig10.csv")).unwrap();
    assert_eq!(csv.lines().count(), 9); // header + 8 task counts
}

#[test]
fn fig11_report_and_csv() {
    let dir = outdir("fig11");
    let report = fig11::run_and_report(3, 1, &dir);
    assert!(report.contains("Figure 11"));
    assert!(report.contains("P(miss)"));
    let csv = fs::read_to_string(dir.join("fig11.csv")).unwrap();
    assert_eq!(csv.lines().count(), 6); // header + 5 schedules
}

#[test]
fn table2_report_and_csv() {
    let dir = outdir("table2");
    let report = table2::run_and_report(1, 1, 5, &dir);
    assert!(report.contains("Table II"));
    let csv = fs::read_to_string(dir.join("table2.csv")).unwrap();
    assert_eq!(csv.lines().count(), 10); // header + 3x3 cells
}

#[test]
fn ablate_report_and_csv() {
    let dir = outdir("ablate");
    let report = ablate::run_and_report(2, 1, &dir);
    assert!(report.contains("Allocation rule"));
    assert!(report.contains("Online dispatch"));
    assert!(report.contains("Wake-up overhead"));
    let csv = fs::read_to_string(dir.join("ablate.csv")).unwrap();
    assert!(csv.contains("alloc_der"));
    assert!(csv.contains("wake_f2_act"));
}

#[test]
fn solvers_study_runs_on_a_small_instance() {
    // The full run_and_report sweeps n ∈ {10, 20, 40}, which is release-
    // build territory; smoke-test the machinery on one small instance.
    let runs = solvers::run(&[8], 1);
    assert_eq!(runs.len(), 6);
    let names: Vec<&str> = runs.iter().map(|r| r.name).collect();
    assert_eq!(
        names,
        vec![
            "pgd",
            "fista",
            "frank_wolfe",
            "interior_point",
            "block_descent",
            "admm"
        ]
    );
    for r in &runs {
        assert!(r.objective.is_finite() && r.objective > 0.0);
    }
}

#[test]
fn worked_examples_render() {
    assert!(worked::fig2_report().contains("YDS"));
    assert!(worked::example_vd_report().contains("31.83"));
    assert!(worked::corecount_report().contains("best"));
}
