//! Golden-file test for the Chrome-trace exporter: a small two-task,
//! two-core pipeline run captured through [`esched::obs::chrome`] must
//! produce trace-event JSON that parses back with `obs::json`, has
//! balanced B/E events with monotonic timestamps, and renders the
//! schedule with one thread per core plus frequency counter tracks.

use esched::obs::chrome::{ChromeTraceSink, SCHEDULE_PID};
use esched::obs::json::{parse, Value};
use esched::obs::trace;
use esched::sim::chrome_schedule_trace;
use esched::types::{PolynomialPower, TaskSet};
use std::sync::Arc;

fn two_task_two_core_schedule() -> esched::types::Schedule {
    // Two overlapping tasks on two cores — small enough to eyeball, big
    // enough to exercise packing and the span hierarchy.
    let tasks = TaskSet::from_triples(&[(0.0, 8.0, 4.0), (2.0, 10.0, 5.0)]);
    esched::core::der_schedule(&tasks, 2, &PolynomialPower::paper(3.0, 0.1)).schedule
}

fn events(doc: &Value) -> &[Value] {
    doc.get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array")
}

fn ph(e: &Value) -> &str {
    e.get("ph").and_then(Value::as_str).expect("ph")
}

#[test]
fn captured_spans_round_trip_as_valid_balanced_chrome_json() {
    let sink = ChromeTraceSink::new();
    trace::init_with(trace::Filter::parse("debug"), Arc::new(sink.clone()));
    let schedule = two_task_two_core_schedule();
    trace::disable();
    assert!(!schedule.segments().is_empty());

    // Serialize, then parse back through the crate's own JSON parser —
    // this is the validity check Perfetto relies on.
    let text = sink.to_json().to_string_pretty();
    let doc = parse(&text).expect("exporter emits parseable JSON");
    let evs = events(&doc);
    assert!(!evs.is_empty(), "pipeline run produced no trace events");

    // Balanced B/E per (pid, tid), closing in LIFO order.
    let mut open: std::collections::HashMap<(u64, u64), u64> = std::collections::HashMap::new();
    let mut b = 0usize;
    let mut e = 0usize;
    for ev in evs {
        let key = (
            ev.get("pid").and_then(Value::as_u64).unwrap_or(0),
            ev.get("tid").and_then(Value::as_u64).unwrap_or(0),
        );
        match ph(ev) {
            "B" => {
                b += 1;
                *open.entry(key).or_insert(0) += 1;
            }
            "E" => {
                e += 1;
                let depth = open.entry(key).or_insert(0);
                assert!(*depth > 0, "E without matching B on {key:?}");
                *depth -= 1;
            }
            _ => {}
        }
    }
    assert_eq!(b, e, "unbalanced B/E events");
    assert!(b > 0, "no duration events captured");
    assert!(open.values().all(|d| *d == 0));

    // Timestamps are monotonic per thread (events are appended in wall
    // order by one sink).
    let mut last: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for ev in evs {
        if ph(ev) == "M" {
            continue;
        }
        let tid = ev.get("tid").and_then(Value::as_u64).unwrap_or(0);
        let ts = ev.get("ts").and_then(Value::as_f64).expect("ts");
        assert!(ts >= *last.get(&tid).unwrap_or(&0.0), "ts went backwards");
        last.insert(tid, ts);
    }
}

#[test]
fn schedule_converter_renders_cores_as_threads_with_freq_counters() {
    let schedule = two_task_two_core_schedule();
    let doc = parse(&chrome_schedule_trace(&schedule).to_string_pretty()).expect("valid JSON");
    let evs = events(&doc);

    // All events live in the schedule process.
    assert!(evs
        .iter()
        .all(|e| e.get("pid").and_then(Value::as_u64) == Some(SCHEDULE_PID)));

    // One thread-name metadata record per core.
    let thread_names: Vec<&str> = evs
        .iter()
        .filter(|e| ph(e) == "M")
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .filter(|n| n.starts_with("core "))
        .collect();
    assert_eq!(thread_names, vec!["core 0", "core 1"]);

    // Balanced durations: one B and one E per schedule segment.
    let n_b = evs.iter().filter(|e| ph(e) == "B").count();
    let n_e = evs.iter().filter(|e| ph(e) == "E").count();
    assert_eq!(n_b, schedule.segments().len());
    assert_eq!(n_e, n_b);

    // Frequency counter track: every segment contributes an on-sample
    // carrying its frequency and an off-sample at zero.
    let counters: Vec<&Value> = evs.iter().filter(|e| ph(e) == "C").collect();
    assert_eq!(counters.len(), 2 * schedule.segments().len());
    for c in &counters {
        let name = c.get("name").and_then(Value::as_str).unwrap();
        assert!(name.ends_with(" freq"), "unexpected counter {name:?}");
        assert!(c.get("args").and_then(|a| a.get("f")).is_some());
    }

    // Counter timestamps are monotonic within each core's track.
    let mut last: std::collections::HashMap<&str, f64> = std::collections::HashMap::new();
    for c in &counters {
        let name = c.get("name").and_then(Value::as_str).unwrap();
        let ts = c.get("ts").and_then(Value::as_f64).unwrap();
        assert!(ts >= *last.get(name).unwrap_or(&0.0));
        last.insert(name, ts);
    }
}
