//! Failure injection: take a known-good schedule, corrupt it in every way
//! the legality model distinguishes, and verify that both the static
//! validator and the dynamic simulator flag exactly the injected fault.

use esched::core::der_schedule;
use esched::sim::simulate;
use esched::types::{validate_schedule, PolynomialPower, Schedule, Segment, TaskSet, Violation};
use esched::workload::section_vd_six_tasks;

fn good() -> (Schedule, TaskSet, PolynomialPower) {
    let tasks = section_vd_six_tasks();
    let p = PolynomialPower::cubic();
    let out = der_schedule(&tasks, 4, &p);
    (out.schedule, tasks, p)
}

/// Rebuild a schedule applying `f` to each segment (returning None drops
/// the segment).
fn map_segments(s: &Schedule, f: impl Fn(usize, &Segment) -> Option<Segment>) -> Schedule {
    let mut out = Schedule::new(s.cores);
    for (k, seg) in s.segments().iter().enumerate() {
        if let Some(n) = f(k, seg) {
            out.push(n);
        }
    }
    out
}

#[test]
fn baseline_is_clean() {
    let (s, tasks, p) = good();
    validate_schedule(&s, &tasks).assert_legal();
    assert!(simulate(&s, &tasks, &p).is_clean());
}

#[test]
fn dropping_a_segment_is_underserved_and_missed() {
    let (s, tasks, p) = good();
    // Drop the longest segment so the work loss is far above tolerance.
    let victim = s
        .segments()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.duration().partial_cmp(&b.1.duration()).unwrap())
        .map(|(k, _)| k)
        .unwrap();
    let victim_task = s.segments()[victim].task;
    let broken = map_segments(&s, |k, seg| (k != victim).then_some(*seg));
    let report = validate_schedule(&broken, &tasks);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::Underserved { task, .. } if *task == victim_task)));
    let sim = simulate(&broken, &tasks, &p);
    assert!(sim.deadline_misses.contains(&victim_task));
}

#[test]
fn shifting_a_segment_outside_the_window_is_flagged() {
    let (s, tasks, _) = good();
    // Move some segment of task 5 (window [12, 22]) to start before 12.
    let victim = s
        .segments()
        .iter()
        .position(|seg| seg.task == 5)
        .expect("task 5 has segments");
    let broken = map_segments(&s, |k, seg| {
        if k == victim {
            Some(Segment::new(
                seg.task,
                seg.core,
                seg.interval.start - 6.0,
                seg.interval.end - 6.0,
                seg.freq,
            ))
        } else {
            Some(*seg)
        }
    });
    let report = validate_schedule(&broken, &tasks);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::OutsideWindow { task: 5, .. })));
}

#[test]
fn duplicating_a_segment_on_another_core_is_self_overlap() {
    let (s, tasks, p) = good();
    let seg0 = s.segments()[0];
    let other_core = (seg0.core + 1) % s.cores;
    let mut broken = s.clone();
    broken.push(Segment::new(
        seg0.task,
        other_core,
        seg0.interval.start,
        seg0.interval.end,
        seg0.freq,
    ));
    let report = validate_schedule(&broken, &tasks);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::SelfOverlap { task, .. } if *task == seg0.task))
            || report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::CoreOverlap { .. })),
        "{:?}",
        report.violations
    );
    let _ = p;
}

#[test]
fn slowing_a_segment_underserves() {
    let (s, tasks, p) = good();
    // Halve the frequency of task 0's first segment: work drops.
    let victim = s.segments().iter().position(|seg| seg.task == 0).unwrap();
    let broken = map_segments(&s, |k, seg| {
        if k == victim {
            Some(Segment::new(
                seg.task,
                seg.core,
                seg.interval.start,
                seg.interval.end,
                seg.freq * 0.5,
            ))
        } else {
            Some(*seg)
        }
    });
    let report = validate_schedule(&broken, &tasks);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::Underserved { task: 0, .. })));
    let sim = simulate(&broken, &tasks, &p);
    assert!(sim.deadline_misses.contains(&0));
}

#[test]
fn moving_to_a_nonexistent_core_is_flagged() {
    let (s, tasks, _) = good();
    let broken = map_segments(&s, |k, seg| {
        if k == 0 {
            Some(Segment::new(
                seg.task,
                99,
                seg.interval.start,
                seg.interval.end,
                seg.freq,
            ))
        } else {
            Some(*seg)
        }
    });
    let report = validate_schedule(&broken, &tasks);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::BadCore { core: 99, .. })));
}

#[test]
fn piling_everything_on_core_zero_creates_conflicts() {
    let (s, tasks, p) = good();
    let broken = map_segments(&s, |_, seg| {
        Some(Segment::new(
            seg.task,
            0,
            seg.interval.start,
            seg.interval.end,
            seg.freq,
        ))
    });
    let report = validate_schedule(&broken, &tasks);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::CoreOverlap { core: 0, .. })));
    let sim = simulate(&broken, &tasks, &p);
    assert!(!sim.conflicts.is_empty());
}

#[test]
fn energy_of_corrupted_schedule_still_integrates() {
    // The simulator must keep producing finite, consistent numbers on
    // garbage input — diagnostics depend on it.
    let (s, tasks, p) = good();
    let broken = map_segments(&s, |k, seg| {
        if k % 2 == 0 {
            Some(Segment::new(
                seg.task,
                0,
                seg.interval.start,
                seg.interval.end,
                seg.freq,
            ))
        } else {
            None
        }
    });
    let sim = simulate(&broken, &tasks, &p);
    assert!(sim.energy.is_finite() && sim.energy >= 0.0);
    assert!(sim.energy <= s.energy(&p) + 1e-9);
}
